/**
 * @file
 * Message reception interface — the paper's Fig. 8 hardware in
 * software.
 *
 * The receiver assembles worms arriving over the ejection channels,
 * strips PAD flits, and implements the sink half of the protocols:
 *
 *  - CR: deliver on tail arrival; discard partial messages when a
 *    forward kill token arrives.
 *  - FCR: check every payload flit (checksum + destination match) as
 *    it reaches the head of its buffer. On an error the receiver
 *    *refuses to consume* — it withholds flow control, the worm backs
 *    up, the source's timeout fires, and the normal CR kill/retry
 *    machinery recovers. The error signal is the absence of
 *    compression, which is what lets FCR avoid acknowledgement
 *    traffic entirely. Pad and tail flits carry no data and are
 *    exempt from the check (a fault there is harmless, and refusing
 *    on one could slip past the padding window).
 *
 * Under dynamic faults (setDynamicFaults) the receiver additionally
 * owns the sink half of mid-flight link-death recovery: a kill token
 * that terminates a worm first folds the already-buffered flits into
 * the assembly, then *finalizes* the message if the payload is
 * complete (FCR's round-trip padding guarantees exactly this for any
 * post-commit cut) instead of discarding it; deliveries whose
 * (src, pairSeq) was already seen are suppressed silently (the
 * retransmission racing a finalize); and a starvation timeout
 * resolves assemblies whose worm went quiet without a kill ever
 * arriving, tearing the stranded ejection reservation down with a
 * receiver-issued backward kill.
 *
 * The receiver also checks the per-(src,dst) sequence number of every
 * delivered message, counting order violations and duplicates — the
 * paper's order-preservation and exactly-once claims become measured
 * invariants.
 */

#ifndef CRNET_NIC_RECEIVER_HH
#define CRNET_NIC_RECEIVER_HH

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/core/annotations.hh"
#include "src/core/metrics.hh"
#include "src/router/buffer.hh"
#include "src/router/flit.hh"
#include "src/sim/config.hh"
#include "src/sim/types.hh"

namespace crnet {

class Auditor;
class Tracer;
class StateWriter;
class StateReader;

/** A fully received message, as reported to the delivery sink. */
struct DeliveredMessage
{
    MsgId id = kInvalidMsg;
    NodeId src = kInvalidNode;
    NodeId dst = kInvalidNode;
    std::uint32_t payloadLen = 0;
    std::uint32_t pairSeq = 0;
    Cycle createdAt = 0;
    Cycle headInjectedAt = 0;
    Cycle deliveredAt = 0;
    std::uint16_t attempts = 0;  //!< Attempt index that succeeded + 1.
    bool measured = false;
    bool corrupted = false;      //!< Any payload flit failed its CRC.
};

/** Consumer of completed messages (the Network implements this). */
class DeliverySink
{
  public:
    virtual ~DeliverySink() = default;
    virtual void onDelivered(const DeliveredMessage& msg) = 0;
};

/** A credit the receiver returns to the local router. */
struct ReceiverCredit
{
    std::uint32_t ejChannel = 0;
    VcId vc = kInvalidVc;
};

/** Per-node sink interface. */
class Receiver
{
  public:
    Receiver(NodeId node, const SimConfig& cfg, NetworkStats* stats,
             DeliverySink* sink);

    // --- Delivery phase ----------------------------------------------

    /** A flit (or kill token) arrives over an ejection channel. */
    void acceptFlit(std::uint32_t ej_channel, VcId vc,
                    const Flit& flit);

    // --- Compute phase -------------------------------------------------

    /** Consume up to one flit per ejection channel. */
    CRNET_HOT_PATH
    void tick(Cycle now);

    /** Credits owed to the router's ejection output VCs this cycle. */
    std::vector<ReceiverCredit> credits;

    /**
     * Backward kills owed to the router's ejection output VCs this
     * cycle (starvation timeouts; dynamic-fault mode only).
     */
    std::vector<ReceiverCredit> bkills;

    // --- Deferred-stats mode (sharded ticks) --------------------------

    /**
     * When on, tick() never touches the shared latency accumulators
     * or calls the delivery sink directly: every completed message is
     * staged in `deliveries` instead, and the Network drains it
     * serially in node order after the shard barrier — so the global
     * Welford/histogram/ledger update sequence is byte-identical to
     * an unsharded run. Off (the default), behavior is unchanged.
     */
    void setDeferStats(bool on) { deferStats_ = on; }

    /** Deliveries staged this tick (valid after tick; drained by owner). */
    std::vector<DeliveredMessage> deliveries;

    // --- Introspection ---------------------------------------------------

    /** True when no flits are buffered and no assembly is open. */
    bool idle() const;

    /**
     * Earliest future cycle at which tick() could change any state
     * (active-set scheduler contract, see docs/PERFORMANCE.md):
     * `now + 1` while any ejection VC holds flits or a terminated
     * assembly awaits resolution, the next starvation-check boundary
     * that could fire otherwise, kNeverCycle when fully idle. May be
     * conservative (early) — a tick before the returned cycle is a
     * state no-op — but never late.
     */
    CRNET_ALLOW("unordered-iter",
                "pure min-fold over assembly deadlines: commutative, "
                "so the fold result is independent of hash order")
    Cycle nextEventCycle(Cycle now) const;

    std::uint64_t deliveredCount() const { return delivered_; }

    /**
     * Arm the dynamic-fault sink machinery (kill-time finalize,
     * duplicate suppression, starvation timeout). Off by default so
     * fault-free configurations behave exactly as before.
     */
    void setDynamicFaults(bool on) { dynamicFaults_ = on; }

    /** Forensic snapshot of one open assembly (watchdog dump). */
    struct AssemblyProbe
    {
        MsgId msg = kInvalidMsg;
        NodeId src = kInvalidNode;
        std::uint16_t attempt = 0;
        std::uint32_t nextSeq = 0;
        std::uint32_t payloadLen = 0;
        Cycle lastFlitAt = 0;
    };
    CRNET_ALLOW("unordered-iter",
                "snapshots the assembly map, then sorts the probes "
                "into MsgId order before returning")
    std::vector<AssemblyProbe> openAssemblies() const;

    // --- Audit probes (see src/sim/audit.hh) --------------------------

    /** Attach the invariant auditor (null to detach). */
    void setAuditor(Auditor* audit) { audit_ = audit; }

    /** Attach the event tracer (null to detach; the default). */
    void setTracer(Tracer* trace) { trace_ = trace; }

    /** Flits buffered in one ejection VC. */
    std::uint32_t occupancy(std::uint32_t ch, VcId vc) const;

    /** Flits buffered across all ejection VCs. */
    std::uint64_t bufferedFlits() const;

    // --- Checkpoint support (snapshot.hh) -----------------------------

    /**
     * Ejection buffers, refusal state, open assemblies and the
     * exactly-once bookkeeping (both serialized in sorted order). The
     * credit/bkill outboxes are cleared at tick entry and need not
     * round-trip.
     */
    void saveState(StateWriter& w) const;
    void loadState(StateReader& r);

  private:
    struct VcBuffer
    {
        explicit VcBuffer(std::size_t depth) : buf(depth) {}

        FlitBuffer buf;
        bool refusing = false;
        MsgId refusedMsg = kInvalidMsg;
    };

    struct Assembly
    {
        NodeId src = kInvalidNode;
        std::uint16_t attempt = 0;
        std::uint32_t nextSeq = 0;
        bool corrupted = false;

        // Dynamic-fault bookkeeping (every flit carries the message
        // metadata, so a kill-terminated assembly can still be
        // finalized into a full DeliveredMessage).
        std::uint32_t payloadLen = 0;
        std::uint32_t pairSeq = 0;
        Cycle createdAt = 0;
        Cycle headInjectedAt = 0;
        bool measured = false;
        std::uint32_t ejChannel = 0;
        VcId vc = 0;
        Cycle lastFlitAt = 0;
        bool terminated = false;  //!< Kill seen; resolve next tick.
    };

    VcBuffer& vcBuf(std::uint32_t ch, VcId vc);
    const VcBuffer& vcBuf(std::uint32_t ch, VcId vc) const;
    void consume(std::uint32_t ch, VcId vc, Cycle now);
    void deliver(const Flit& tail, const Assembly& a, Cycle now);
    CRNET_ALLOW("alloc",
                "deliveries-outbox reuse in deferred mode: amortized "
                "growth only, steady-state-free "
                "(tests/test_alloc_steady.cc)")
    void commitDelivery(const DeliveredMessage& d);
    CRNET_ALLOW("alloc",
                "per-delivery exactly-once bookkeeping: one seen-set "
                "node per delivered message, by design")
    void checkDeliveryOrder(NodeId src, std::uint32_t pair_seq);
    void noteFlit(Assembly& a, const Flit& flit);
    void drainIntoAssembly(std::uint32_t ch, VcId vc, MsgId msg);
    void resolveTerminated(MsgId msg, Assembly& a, Cycle now);
    /** Resolve kill-terminated assemblies, in MsgId order. */
    CRNET_ALLOW("unordered-iter",
                "collects terminated ids from the assembly map, then "
                "sorts into MsgId order before resolving")
    CRNET_ALLOW("alloc",
                "doneScratch_ reuse: amortized growth only, "
                "steady-state-free (tests/test_alloc_steady.cc)")
    void resolveAllTerminated(Cycle now);
    CRNET_ALLOW("unordered-iter",
                "collects starved ids from the assembly map, then "
                "sorts into MsgId order before salvaging")
    CRNET_ALLOW("alloc",
                "starvedScratch_/bkills reuse: amortized growth only, "
                "steady-state-free (tests/test_alloc_steady.cc)")
    void checkStarvation(Cycle now);

    NodeId node_;
    const SimConfig& cfg_;
    NetworkStats* stats_;
    DeliverySink* sink_;
    Auditor* audit_ = nullptr;
    Tracer* trace_ = nullptr;
    bool deferStats_ = false;

    std::vector<VcBuffer> bufs_;  //!< [channel][vc] flattened.
    std::vector<VcId> rrVc_;      //!< Consumption RR per channel.
    std::unordered_map<MsgId, Assembly> assemblies_;
    /**
     * Exactly-once / order bookkeeping. A delivery whose pairSeq was
     * already seen is a duplicate; one below the last delivered
     * sequence of its source is a reorder (order violation). The
     * seen-set distinguishes the two (a plain expected-counter cannot
     * tell a late arrival from a true duplicate).
     */
    /**
     * Per-source last-delivered-sequence table, adaptive by network
     * size. Small networks (<= kDenseSeqNodeLimit nodes, which covers
     * every paper-scale configuration) use the dense vector — one
     * branch-free indexed load per delivery, -1 meaning nothing
     * delivered yet. Above the limit the dense form is O(nodes^2) per
     * network (34 GB on a 64k-node torus), so giant networks fall
     * back to a sparse map holding only the sources that actually
     * reached this node. Both forms serialize identically (sorted,
     * non-empty entries only).
     */
    static constexpr NodeId kDenseSeqNodeLimit = 512;
    std::vector<std::int64_t> lastSeqDense_;
    std::unordered_map<NodeId, std::int64_t> lastSeqSparse_;
    std::unordered_set<std::uint64_t> seenSeq_;  //!< (src<<32)|seq.
    std::uint64_t delivered_ = 0;

    bool dynamicFaults_ = false;
    /** Cycles between starvation scans (tick only acts on multiples). */
    static constexpr Cycle kStarvationCheckPeriod = 64;
    std::vector<MsgId> doneScratch_;     //!< tick() terminated-id reuse.
    std::vector<MsgId> starvedScratch_;  //!< checkStarvation() reuse.
    /**
     * Starvation backstop: far beyond any legitimate stall (the
     * source timeout resolves those), so it only fires when the
     * worm's kill was lost to cascading link deaths. A spurious fire
     * is still safe — it acts like a receiver-side path-wide kill.
     */
    Cycle starvationThreshold_ = 0;
};

} // namespace crnet

#endif // CRNET_NIC_RECEIVER_HH
