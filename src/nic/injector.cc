#include "src/nic/injector.hh"

#include <algorithm>

#include "src/nic/backoff.hh"
#include "src/nic/padding.hh"
#include "src/sim/audit.hh"
#include "src/sim/log.hh"
#include "src/sim/snapshot.hh"
#include "src/sim/trace.hh"

namespace crnet {

Injector::Injector(NodeId node, const SimConfig& cfg,
                   const Topology& topo, const RoutingAlgorithm& algo,
                   NetworkStats* stats, Rng rng)
    : node_(node), cfg_(cfg), topo_(topo), algo_(algo), stats_(stats),
      rng_(rng),
      slots_(static_cast<std::size_t>(cfg.injectionChannels) *
             cfg.numVcs),
      rrVc_(cfg.injectionChannels, 0),
      channelUsed_(cfg.injectionChannels, false)
{
    if (stats == nullptr)
        panic("Injector requires a NetworkStats block");
    for (auto& s : slots_)
        s.credits = cfg.bufferDepth;
}

Injector::Slot&
Injector::slot(std::uint32_t ch, VcId vc)
{
    return slots_[static_cast<std::size_t>(ch) * cfg_.numVcs + vc];
}

const Injector::Slot&
Injector::slot(std::uint32_t ch, VcId vc) const
{
    return slots_[static_cast<std::size_t>(ch) * cfg_.numVcs + vc];
}

std::uint32_t
Injector::slotCredits(std::uint32_t ch, VcId vc) const
{
    return slot(ch, vc).credits;
}

bool
Injector::slotInCooldown(std::uint32_t ch, VcId vc) const
{
    return slot(ch, vc).state == Slot::State::Cooldown;
}

bool
Injector::queueFull() const
{
    return queue_.size() >= cfg_.maxPendingPerNode;
}

bool
Injector::enqueue(const PendingMessage& msg)
{
    if (queueFull()) {
        stats_->sourceQueueDrops.inc();
        return false;
    }
    queue_.push_back(msg);
    queueMinNotBefore_ = std::min(queueMinNotBefore_, msg.notBefore);
    return true;
}

void
Injector::recomputeQueueMin()
{
    queueMinNotBefore_ = kNeverCycle;
    for (const PendingMessage& m : queue_)
        queueMinNotBefore_ = std::min(queueMinNotBefore_, m.notBefore);
}

void
Injector::acceptCredit(std::uint32_t inj_channel, VcId vc)
{
    Slot& s = slot(inj_channel, vc);
    if (s.state == Slot::State::Cooldown) {
        // Post-kill stragglers; the counter is reset when the slot
        // leaves cooldown.
        return;
    }
    if (s.credits >= cfg_.bufferDepth) {
        stats_->router.lateCreditsDropped.inc();
        return;
    }
    ++s.credits;
}

void
Injector::acceptAbort(std::uint32_t inj_channel, VcId vc, MsgId msg)
{
    Slot& s = slot(inj_channel, vc);
    if (s.state != Slot::State::Active || s.msg.id != msg) {
        // Stale abort. If the slot is mid-cooldown (we killed the
        // worm from this side) the ledger resync is already underway.
        // Otherwise the worm finished injecting before its flits were
        // purged upstream, so their credits will never return: run
        // the slot through a cooldown to reset the ledger. A reused
        // slot whose head is not out yet goes back to the queue
        // (injection requires a full ledger, so nothing of it is in
        // flight); one whose head was injected saw a full ledger at
        // that point, meaning the purge predates it and credits are
        // already settled.
        if (s.state == Slot::State::Cooldown)
            return;
        if (s.state == Slot::State::Active) {
            if (s.nextSeq != 0)
                return;
            busyDests_.erase(s.msg.dst);
            queue_.push_front(s.msg);
            queueMinNotBefore_ =
                std::min(queueMinNotBefore_, s.msg.notBefore);
        }
        s.state = Slot::State::Cooldown;
        s.cooldownUntil = 0;
        return;
    }
    stats_->abortedByBkill.inc();
    if (trace_ != nullptr) {
        trace_->record(TraceEventKind::Abort, s.msg.id, node_, node_,
                       s.msg.dst, s.msg.attempt);
    }
    PendingMessage retry = s.msg;
    retry.attempt = static_cast<std::uint16_t>(retry.attempt + 1);
    // The backoff gap is anchored at the next tick (requeueForRetry
    // runs there, where "now" is known).
    pendingRetries_.push_back(retry);
    // A backward kill arrives only after the router purged the
    // injection VC, so all credit traffic has settled; the slot can be
    // reused at the next tick.
    s.state = Slot::State::Cooldown;
    s.cooldownUntil = 0;
}

void
Injector::requeueForRetry(PendingMessage msg, Cycle now)
{
    const std::uint32_t kills = msg.attempt;  // Attempts failed so far.
    if (cfg_.maxRetries != 0 && kills > cfg_.maxRetries) {
        stats_->messagesFailed.inc();
        if (msg.measured)
            stats_->measuredFailed.inc();
        if (trace_ != nullptr) {
            trace_->record(TraceEventKind::GiveUp, msg.id, node_,
                           node_, msg.dst, msg.attempt);
        }
        busyDests_.erase(msg.dst);
        if (failureSink_ != nullptr) {
            if (deferStats_)
                failed.push_back(FailedMessage{msg, now});
            else
                failureSink_->onMessageFailed(msg, now);
        }
        return;
    }
    msg.notBefore = now + retransmissionGap(cfg_, kills, rng_);
    if (trace_ != nullptr) {
        trace_->record(TraceEventKind::Retransmit, msg.id, node_,
                       node_, msg.dst, msg.attempt,
                       msg.notBefore - now);
    }
    queue_.push_front(msg);
    queueMinNotBefore_ = std::min(queueMinNotBefore_, msg.notBefore);
    // The worm is out of the network, so release the destination
    // reservation. No younger message to the same destination can
    // overtake the retry anyway: the retry sits at the front of the
    // queue and startWorms() skips any destination already seen
    // earlier in the scan.
    busyDests_.erase(msg.dst);
}

Flit
Injector::buildFlit(const Slot& s, std::uint32_t seq, Cycle now) const
{
    Flit f;
    f.msg = s.msg.id;
    f.seq = seq;
    f.src = node_;
    f.dst = s.msg.dst;
    f.attempt = s.msg.attempt;
    f.payloadLen = s.msg.payloadLen;
    f.pairSeq = s.msg.pairSeq;
    f.createdAt = s.msg.createdAt;
    f.headInjectedAt = seq == 0 ? now : s.headInjectedAt;
    f.measured = s.msg.measured;
    if (seq == 0)
        f.type = FlitType::Head;
    else if (seq == s.wireLen - 1)
        f.type = FlitType::Tail;
    else if (seq < s.msg.payloadLen)
        f.type = FlitType::Body;
    else
        f.type = FlitType::Pad;
    // Deterministic payload word; the CRC over it models the per-flit
    // checksum FCR hardware carries.
    f.payload = (static_cast<std::uint64_t>(s.msg.id) << 20) ^ seq;
    f.stampCrc();
    if (f.type == FlitType::Head) {
        if (cfg_.misrouteAfterRetries != 0 &&
            s.msg.attempt >= cfg_.misrouteAfterRetries) {
            f.misrouteBudget = static_cast<std::uint8_t>(
                std::min<std::uint32_t>(cfg_.misrouteBudget, 255));
        }
        algo_.onInject(node_, f);
    }
    return f;
}

bool
Injector::timeoutExpired(const Slot& s, Cycle now) const
{
    if (cfg_.protocol == ProtocolKind::None)
        return false;
    if (cfg_.timeoutScheme == TimeoutScheme::PathWide ||
        cfg_.timeoutScheme == TimeoutScheme::DropAtBlock) {
        return false;  // Routers detect stalls in those schemes.
    }
    if (s.nextSeq == 0)
        return false;  // Timeout arms once transmission starts.
    if (cfg_.timeoutScheme == TimeoutScheme::SourceStall)
        return s.stallCycles > cfg_.timeout;
    // SourceImin: the paper's progress bound. If the header never
    // blocked it is consumed after ~hops cycles and injection then
    // proceeds at one flit per cycle — divided by the number of VCs,
    // because up to numVcs worms share the injection channel's
    // bandwidth. `timeout` doubles as the slack on the bound.
    const Cycle header_bound =
        static_cast<Cycle>(s.hops) * cfg_.channelLatency + s.hops;
    const Cycle elapsed = now - s.startCycle;
    if (elapsed <= header_bound + cfg_.timeout)
        return false;
    const Cycle i_min =
        (elapsed - header_bound - cfg_.timeout) / cfg_.numVcs;
    return s.nextSeq < i_min;
}

void
Injector::killWorm(std::uint32_t ch, VcId vc, Cycle now)
{
    Slot& s = slot(ch, vc);
    stats_->sourceKills.inc();
    if (trace_ != nullptr) {
        trace_->record(TraceEventKind::SourceKill, s.msg.id, node_,
                       node_, s.msg.dst, s.msg.attempt,
                       s.stallCycles);
    }

    Flit token;
    token.type = FlitType::Kill;
    token.msg = s.msg.id;
    token.src = node_;
    token.dst = s.msg.dst;
    token.attempt = s.msg.attempt;
    CRNET_AUDIT_HOOK(audit_, onKillIssued(token.msg, token.attempt));
    sent.push_back(InjectedFlit{ch, vc, token});
    channelUsed_[ch] = true;

    PendingMessage retry = s.msg;
    retry.attempt = static_cast<std::uint16_t>(retry.attempt + 1);
    requeueForRetry(retry, now);

    s.state = Slot::State::Cooldown;
    s.cooldownUntil = now + 2;
}

void
Injector::startWorms(Cycle now)
{
    for (std::uint32_t ch = 0; ch < cfg_.injectionChannels; ++ch) {
        for (VcId vc = 0; vc < cfg_.numVcs; ++vc) {
            Slot& s = slot(ch, vc);
            if (s.state != Slot::State::Free)
                continue;

            // Scan the queue in order; a message is eligible when its
            // backoff expired and (if ordering is enforced) no
            // earlier message, queued or in flight, targets the same
            // destination.
            std::vector<NodeId>& seen = seenScratch_;
            seen.clear();
            auto it = queue_.begin();
            for (; it != queue_.end(); ++it) {
                const bool dst_clear = !cfg_.enforceDestOrder ||
                    (!busyDests_.count(it->dst) &&
                     std::find(seen.begin(), seen.end(), it->dst) ==
                         seen.end());
                if (dst_clear && it->notBefore <= now)
                    break;
                seen.push_back(it->dst);
                if (seen.size() >= 16)
                    it = queue_.end() - 1;  // Bound the scan cost.
            }
            if (it == queue_.end())
                continue;

            PendingMessage msg = *it;
            queue_.erase(it);
            if (msg.notBefore == queueMinNotBefore_)
                recomputeQueueMin();
            busyDests_.insert(msg.dst);

            s.state = Slot::State::Active;
            s.msg = msg;
            s.hops = topo_.distance(node_, msg.dst);
            std::uint32_t eff_hops = s.hops;
            if (cfg_.misrouteAfterRetries != 0 &&
                msg.attempt >= cfg_.misrouteAfterRetries) {
                // Non-minimal hops lengthen the path; pad for the
                // worst case so the CR commit rule stays sound.
                eff_hops += 2 * cfg_.misrouteBudget;
            }
            s.hops = eff_hops;  // I_min must cover misroute detours.
            s.wireLen = wireLength(cfg_.protocol, msg.payloadLen,
                                   eff_hops, cfg_.bufferDepth,
                                   cfg_.padSlack,
                                   cfg_.channelLatency);
            s.nextSeq = 0;
            s.startCycle = now;
            s.stallCycles = 0;
            CRNET_AUDIT_HOOK(audit_, onWormStart(node_, msg.dst,
                                                 s.wireLen,
                                                 msg.payloadLen));
        }
    }
}

void
Injector::checkTimeouts(Cycle now)
{
    for (std::uint32_t ch = 0; ch < cfg_.injectionChannels; ++ch) {
        for (VcId vc = 0; vc < cfg_.numVcs; ++vc) {
            Slot& s = slot(ch, vc);
            if (s.state != Slot::State::Active)
                continue;
            if (channelUsed_[ch])
                continue;  // One kill token per channel per cycle.
            if (timeoutExpired(s, now))
                killWorm(ch, vc, now);
        }
    }
}

void
Injector::injectFlits(Cycle now)
{
    for (std::uint32_t ch = 0; ch < cfg_.injectionChannels; ++ch) {
        VcId injected_vc = kInvalidVc;
        if (!channelUsed_[ch]) {
            for (std::uint32_t i = 0; i < cfg_.numVcs; ++i) {
                const VcId vc = static_cast<VcId>(
                    (rrVc_[ch] + i) % cfg_.numVcs);
                Slot& s = slot(ch, vc);
                if (s.state != Slot::State::Active)
                    continue;
                if (s.nextSeq >= s.wireLen)
                    continue;
                if (s.credits == 0)
                    continue;
                // A head only enters an empty, idle router VC: wait
                // for all credits so worms never share a buffer.
                if (s.nextSeq == 0 && s.credits < cfg_.bufferDepth)
                    continue;

                Flit f = buildFlit(s, s.nextSeq, now);
                if (s.nextSeq == 0) {
                    s.headInjectedAt = now;
                    if (trace_ != nullptr) {
                        trace_->record(TraceEventKind::Inject,
                                       s.msg.id, node_, node_,
                                       s.msg.dst, s.msg.attempt);
                    }
                }
                sent.push_back(InjectedFlit{ch, vc, f});
                --s.credits;
                ++s.nextSeq;
                s.stallCycles = 0;
                stats_->flitsInjected.inc();
                CRNET_AUDIT_HOOK(audit_, onFlitInjected(node_, f));
                if (f.type == FlitType::Pad)
                    stats_->padFlitsInjected.inc();
                rrVc_[ch] = static_cast<VcId>((vc + 1) % cfg_.numVcs);
                injected_vc = vc;

                if (f.type == FlitType::Tail) {
                    // CR commit: padding guarantees the header has
                    // been consumed, so the message is delivered
                    // without acknowledgement.
                    stats_->messagesCommitted.inc();
                    if (trace_ != nullptr) {
                        trace_->record(TraceEventKind::Commit,
                                       s.msg.id, node_, node_,
                                       s.msg.dst, s.msg.attempt);
                    }
                    if (s.msg.measured) {
                        const double att = s.msg.attempt + 1;
                        const double pad =
                            static_cast<double>(s.wireLen -
                                                s.msg.payloadLen - 1) /
                            s.wireLen;
                        if (deferStats_) {
                            committedStats.push_back(
                                CommittedSample{att, pad});
                        } else {
                            stats_->attempts.add(att);
                            stats_->padOverhead.add(pad);
                        }
                    }
                    busyDests_.erase(s.msg.dst);
                    s.state = Slot::State::Free;
                }
                break;
            }
        }

        // Stall accounting: compression at the source shows up as the
        // injection VC's buffer staying full — credits exhausted. A
        // worm that merely lost this cycle's channel arbitration to a
        // sibling VC still has a draining buffer and is NOT stalled
        // (this is what lets timeout scale as len/VCs instead of
        // exploding when many worms share one channel).
        for (VcId vc = 0; vc < cfg_.numVcs; ++vc) {
            Slot& s = slot(ch, vc);
            if (s.state != Slot::State::Active || s.nextSeq == 0)
                continue;
            if (s.nextSeq >= s.wireLen)
                continue;
            if (s.credits == 0)
                ++s.stallCycles;
            else if (vc != injected_vc)
                s.stallCycles = 0;
        }
    }
}

void
Injector::tick(Cycle now)
{
    sent.clear();
    failed.clear();
    committedStats.clear();
    std::fill(channelUsed_.begin(), channelUsed_.end(), false);

    // Finish processing aborts accepted during delivery.
    for (PendingMessage& retry : pendingRetries_)
        requeueForRetry(retry, now);
    pendingRetries_.clear();

    // Leave cooldown: the router-side VC is purged and all credit
    // traffic has settled, so the ledger resets to "empty buffer".
    for (auto& s : slots_) {
        if (s.state == Slot::State::Cooldown &&
            now >= s.cooldownUntil) {
            s.state = Slot::State::Free;
            s.credits = cfg_.bufferDepth;
        }
    }

    checkTimeouts(now);
    startWorms(now);
    injectFlits(now);
}

Injector::SlotProbe
Injector::slotProbe(std::uint32_t ch, VcId vc) const
{
    const Slot& s = slot(ch, vc);
    SlotProbe p;
    p.active = s.state == Slot::State::Active;
    if (p.active) {
        p.msg = s.msg.id;
        p.dst = s.msg.dst;
        p.attempt = s.msg.attempt;
        p.nextSeq = s.nextSeq;
        p.wireLen = s.wireLen;
        p.stallCycles = s.stallCycles;
    }
    p.credits = s.credits;
    return p;
}

std::uint32_t
Injector::activeWorms() const
{
    std::uint32_t n = 0;
    for (const auto& s : slots_)
        if (s.state == Slot::State::Active)
            ++n;
    return n;
}

Cycle
Injector::nextEventCycle(Cycle now) const
{
    // A pending retry is requeued (and may draw its backoff gap) at
    // the very next tick; an active worm needs per-cycle stall/I_min
    // accounting and flit injection.
    if (!pendingRetries_.empty())
        return now + 1;
    Cycle next = kNeverCycle;
    for (const auto& s : slots_) {
        if (s.state == Slot::State::Active)
            return now + 1;
        if (s.state == Slot::State::Cooldown) {
            // The exit resets the credit ledger at exactly
            // cooldownUntil; waking later would let a late credit see
            // a different slot state than under the sweep scheduler.
            if (s.cooldownUntil <= now + 1)
                return now + 1;
            next = std::min(next, s.cooldownUntil);
        }
    }
    // With no active worm, busyDests_ is empty, so a queued message
    // is held back only by its backoff expiry (destination-order
    // interleavings can delay an individual start, but a tick before
    // then is a no-op, which keeps this bound safe). The incremental
    // minimum makes this O(1) even for a deep backoff queue; it is
    // exact, so the returned deadline matches a full rescan.
    if (!queue_.empty()) {
        if (queueMinNotBefore_ <= now + 1)
            return now + 1;
        next = std::min(next, queueMinNotBefore_);
    }
    return next;
}

bool
Injector::idle() const
{
    if (!queue_.empty() || !pendingRetries_.empty())
        return false;
    for (const auto& s : slots_)
        if (s.state == Slot::State::Active)
            return false;
    return true;
}

CRNET_ALLOW("unordered-iter",
            "busy-destination set is sorted before serialization so "
            "the snapshot bytes never depend on hash order")
void
Injector::saveState(StateWriter& w) const
{
    w.u64(queue_.size());
    for (const PendingMessage& m : queue_)
        saveMessage(w, m);
    w.u64(pendingRetries_.size());
    for (const PendingMessage& m : pendingRetries_)
        saveMessage(w, m);
    for (const Slot& s : slots_) {
        w.u8(static_cast<std::uint8_t>(s.state));
        w.u32(s.credits);
        w.u64(s.cooldownUntil);
        saveMessage(w, s.msg);
        w.u32(s.wireLen);
        w.u32(s.nextSeq);
        w.u32(s.hops);
        w.u64(s.startCycle);
        w.u64(s.stallCycles);
        w.u64(s.headInjectedAt);
    }
    std::vector<NodeId> busy(busyDests_.begin(), busyDests_.end());
    std::sort(busy.begin(), busy.end());
    w.u64(busy.size());
    for (NodeId dst : busy)
        w.u32(dst);
    for (VcId vc : rrVc_)
        w.u16(vc);
    saveRng(w, rng_);
}

void
Injector::loadState(StateReader& r)
{
    queue_.clear();
    const std::uint64_t queued = r.u64();
    for (std::uint64_t i = 0; i < queued; ++i) {
        PendingMessage m;
        loadMessage(r, m);
        queue_.push_back(m);
    }
    recomputeQueueMin();
    pendingRetries_.clear();
    const std::uint64_t retries = r.u64();
    for (std::uint64_t i = 0; i < retries; ++i) {
        PendingMessage m;
        loadMessage(r, m);
        pendingRetries_.push_back(m);
    }
    for (Slot& s : slots_) {
        s.state = static_cast<Slot::State>(r.u8());
        s.credits = r.u32();
        s.cooldownUntil = r.u64();
        loadMessage(r, s.msg);
        s.wireLen = r.u32();
        s.nextSeq = r.u32();
        s.hops = r.u32();
        s.startCycle = r.u64();
        s.stallCycles = r.u64();
        s.headInjectedAt = r.u64();
    }
    busyDests_.clear();
    const std::uint64_t busy = r.u64();
    for (std::uint64_t i = 0; i < busy; ++i)
        busyDests_.insert(r.u32());
    for (VcId& vc : rrVc_)
        vc = r.u16();
    loadRng(r, rng_);
    sent.clear();
    failed.clear();
    committedStats.clear();
}

} // namespace crnet
