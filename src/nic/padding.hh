/**
 * @file
 * CR/FCR message padding rules.
 *
 * "Network depth" of a path is the number of flits the pipeline from
 * injector to receiver can hold:
 *
 *   injection channel register            1
 *   input VC buffers, (hops+1) routers    (hops + 1) * depth
 *   router-to-router channel registers    hops
 *   ejection channel register             1
 *   receiver-side VC buffer               depth
 *   total                                 (hops + 2) * depth + hops + 2
 *
 * CR invariant: a message must be at least that long (plus slack) so
 * that, while any flit remains at the source, a blocked header always
 * shows up as an injection stall, and the worm can still be killed
 * (the receiver has not committed anything). Conversely, once the tail
 * has been injected the header must already have been consumed, so
 * delivery is guaranteed and the source can free the message with no
 * acknowledgement.
 *
 * FCR invariant: every payload flit must be followed by at least one
 * network depth of padding. The receiver signals a detected error by
 * refusing to consume (withholding flow control); the refusal's stall
 * wave reaches the source before the tail is injected only if the
 * source still has a full pipeline's worth of flits to inject when the
 * last payload flit is checked. This is the paper's "round-trip"
 * padding: total length = payload + network depth (+ slack).
 */

#ifndef CRNET_NIC_PADDING_HH
#define CRNET_NIC_PADDING_HH

#include <algorithm>
#include <cstdint>

#include "src/sim/config.hh"

namespace crnet {

/**
 * Flit capacity of a path of `hops` router-to-router channels.
 * `channel_latency` > 1 models deep networks (long wires): each
 * network channel then pipelines that many flits, which is the
 * paper's "Network Depth" discussion — padding grows with wire
 * length. NIC channels stay one flit deep.
 */
inline std::uint32_t
pathFlitCapacity(std::uint32_t hops, std::uint32_t buffer_depth,
                 std::uint32_t channel_latency = 1)
{
    return (hops + 2) * buffer_depth + hops * channel_latency + 2;
}

/**
 * Total wire length (payload + pads + tail) for a message.
 *
 * @param protocol     Protocol in force.
 * @param payload_len  Payload flits including the head.
 * @param hops         Minimal path length; callers add 2x the misroute
 *                     budget when non-minimal hops are possible.
 * @param buffer_depth VC buffer depth.
 * @param pad_slack    Safety margin in flits.
 */
inline std::uint32_t
wireLength(ProtocolKind protocol, std::uint32_t payload_len,
           std::uint32_t hops, std::uint32_t buffer_depth,
           std::uint32_t pad_slack, std::uint32_t channel_latency = 1)
{
    const std::uint32_t capacity =
        pathFlitCapacity(hops, buffer_depth, channel_latency);
    switch (protocol) {
      case ProtocolKind::None:
        return payload_len + 1;  // Just the tail terminator.
      case ProtocolKind::Cr:
        return std::max(payload_len + 1, capacity + pad_slack);
      case ProtocolKind::Fcr:
        return payload_len + capacity + pad_slack;
    }
    return payload_len + 1;
}

} // namespace crnet

#endif // CRNET_NIC_PADDING_HH
