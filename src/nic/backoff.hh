/**
 * @file
 * Retransmission-gap policies (paper Sec. 6.1, Fig. 11).
 *
 * After a kill, the source waits a gap before retransmitting. The
 * static policy waits a fixed number of cycles; the dynamic policy is
 * binary exponential backoff in the Ethernet style: after the n-th
 * kill of a message, the gap is a uniformly random multiple of the
 * base gap in [0, 2^min(n,10)), capped by backoffCap.
 */

#ifndef CRNET_NIC_BACKOFF_HH
#define CRNET_NIC_BACKOFF_HH

#include <algorithm>
#include <cstdint>

#include "src/sim/config.hh"
#include "src/sim/rng.hh"
#include "src/sim/types.hh"

namespace crnet {

/** Gap before attempt `kills`+1 (kills >= 1 = number of kills so far). */
inline Cycle
retransmissionGap(const SimConfig& cfg, std::uint32_t kills, Rng& rng)
{
    switch (cfg.backoff) {
      case BackoffScheme::Static:
        return cfg.backoffGap;
      case BackoffScheme::Exponential: {
        const std::uint32_t exponent = std::min<std::uint32_t>(kills,
                                                               10);
        const std::uint64_t window = std::uint64_t{1} << exponent;
        const Cycle gap = cfg.backoffGap * rng.below(window);
        return std::min<Cycle>(gap, cfg.backoffCap);
      }
    }
    return cfg.backoffGap;
}

} // namespace crnet

#endif // CRNET_NIC_BACKOFF_HH
