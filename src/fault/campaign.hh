/**
 * @file
 * Monte-Carlo fault-campaign harness: N seeded trials of a network
 * under dynamic faults, each verified against a per-message delivery
 * ledger.
 *
 * The ledger is the delivery-guarantee oracle: every message the
 * network *accepts* (enqueued at a source) must eventually be either
 * delivered exactly once uncorrupted, or explicitly refused (the
 * source exhausted maxRetries — e.g. the destination became
 * unreachable). A message in any other terminal state — silently
 * lost, duplicated, or still pending after the network drained — is
 * an accounting violation and fails the trial.
 *
 * A campaign reports survivability statistics across trials: delivery
 * rate, the post-fault latency transient (mean latency of messages
 * created after the first fault vs before), and recovery time (how
 * long pre-fault traffic needed to finish after the fault hit).
 */

#ifndef CRNET_FAULT_CAMPAIGN_HH
#define CRNET_FAULT_CAMPAIGN_HH

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/core/annotations.hh"
#include "src/nic/receiver.hh"
#include "src/sim/config.hh"
#include "src/sim/telemetry.hh"
#include "src/sim/types.hh"
#include "src/traffic/message.hh"

namespace crnet {

class StateWriter;
class StateReader;

/** Terminal state of one accepted message. */
enum class MessageFate : std::uint8_t {
    Pending,    //!< Accepted, not yet resolved (bad if final).
    Delivered,  //!< Arrived intact, exactly once.
    Refused     //!< Source gave up after maxRetries (accounted).
};

/** Ledger record of one accepted message. */
struct LedgerEntry
{
    NodeId src = kInvalidNode;
    NodeId dst = kInvalidNode;
    Cycle createdAt = 0;
    bool measured = false;
    MessageFate fate = MessageFate::Pending;
    Cycle resolvedAt = 0;
    std::uint16_t attempts = 0;
    bool corrupted = false;
    /**
     * Both terminal states were observed: the source refused after
     * a kill-cut copy had already been finalized at the sink.
     * Delivery wins — the message DID arrive — but the flag is kept
     * so campaigns can report how often the race occurs.
     */
    bool deliveredAfterRefusal = false;
};

/**
 * Per-message delivery account. Attach to a Network with
 * attachLedger(); it observes accepts, deliveries and refusals.
 */
class DeliveryLedger
{
  public:
    void onAccepted(const PendingMessage& msg);
    void onDelivered(const DeliveredMessage& msg);
    void onRefused(const PendingMessage& msg, Cycle now);

    std::uint64_t accepted() const { return entries_.size(); }
    std::uint64_t delivered() const { return delivered_; }
    std::uint64_t refused() const { return refused_; }
    std::uint64_t pending() const
    {
        return entries_.size() - delivered_ - refused_;
    }
    /** Second delivery of an already-delivered message (must be 0). */
    std::uint64_t duplicates() const { return duplicates_; }
    /** Deliveries of messages the ledger never saw accepted. */
    std::uint64_t unknownDeliveries() const { return unknown_; }
    /** Delivered messages whose payload failed its CRC. */
    std::uint64_t corruptedDeliveries() const { return corrupted_; }
    /** Refusals that a delivery later overrode. */
    std::uint64_t refusalRaces() const { return refusalRaces_; }

    /** Every accepted message reached a terminal state, cleanly. */
    bool fullyAccounted() const
    {
        return pending() == 0 && duplicates_ == 0 && unknown_ == 0;
    }

    const std::unordered_map<MsgId, LedgerEntry>& entries() const
    {
        return entries_;
    }

    /**
     * Entries snapshotted into ascending-MsgId order. Anything that
     * folds the ledger into a reported number (latency transients,
     * recovery times, audit dumps) must iterate this, not entries():
     * float accumulation over hash order would make the result depend
     * on the container's bucket layout.
     */
    std::vector<std::pair<MsgId, const LedgerEntry*>>
    sortedEntries() const;

    // --- Checkpoint support (snapshot.hh) -----------------------------

    /** Entries in sorted MsgId order, then the derived counters. */
    void saveState(StateWriter& w) const;
    void loadState(StateReader& r);

  private:
    std::unordered_map<MsgId, LedgerEntry> entries_;
    std::uint64_t delivered_ = 0;
    std::uint64_t refused_ = 0;
    std::uint64_t duplicates_ = 0;
    std::uint64_t unknown_ = 0;
    std::uint64_t corrupted_ = 0;
    std::uint64_t refusalRaces_ = 0;
};

/** One campaign's parameters. */
struct CampaignConfig
{
    SimConfig base;                //!< Must have dynamic faults set.
    std::uint32_t trials = 100;
    std::uint64_t seedBase = 1;    //!< Trial t runs seed seedBase + t.
    Cycle drainCap = 500000;       //!< Max extra cycles to drain.
    /**
     * Crash-resume journal path ("" = no journal). Each completed
     * trial is appended as a CRC-guarded record; a restarted campaign
     * replays the journal, re-runs only the missing trials, and
     * produces a summary bit-identical to an uninterrupted run
     * (docs/ROBUSTNESS.md).
     */
    std::string journalPath;
    /**
     * Watchdog retries for a trial that exhausts its drain budget
     * without either quiescing or deadlocking. Each retry doubles the
     * drain cap; a trial that exhausts every retry is *quarantined* —
     * reported with `quarantined` set, never silently dropped.
     */
    std::uint32_t trialRetries = 1;
};

/** What happened in one seeded trial. */
struct TrialOutcome
{
    std::uint32_t trial = 0;
    std::uint64_t seed = 0;
    std::uint64_t accepted = 0;
    std::uint64_t delivered = 0;
    std::uint64_t refused = 0;
    std::uint64_t pendingAtEnd = 0;   //!< Must be 0.
    std::uint64_t duplicates = 0;     //!< Must be 0.
    std::uint64_t faultEvents = 0;
    std::uint64_t flitsLost = 0;
    std::uint64_t receiverTimeouts = 0;
    Cycle firstFaultAt = 0;
    double preFaultLatency = 0.0;     //!< Mean, created before fault.
    double postFaultLatency = 0.0;    //!< Mean, created after fault.
    Cycle recoveryCycles = 0;  //!< Pre-fault traffic done, post-fault.
    bool deadlocked = false;
    bool fullyAccounted = false;
    Cycle cyclesRun = 0;
    std::uint64_t flitEvents = 0;  //!< Engine work done this trial.
    /**
     * The trial exhausted its doubled drain budget on every watchdog
     * retry without quiescing or deadlocking — a pathological run,
     * reported as its own fate (fullyAccounted stays false).
     */
    bool quarantined = false;
    std::uint32_t budgetRetries = 0;  //!< Watchdog re-runs consumed.
};

/** Aggregates across all trials of one campaign. */
struct CampaignSummary
{
    std::uint32_t trials = 0;
    std::uint32_t accountedTrials = 0;  //!< fullyAccounted == true.
    std::uint32_t deadlockedTrials = 0;
    std::uint64_t accepted = 0;
    std::uint64_t delivered = 0;
    std::uint64_t refused = 0;
    std::uint64_t pending = 0;
    std::uint64_t duplicates = 0;
    std::uint64_t faultEvents = 0;
    double deliveryRate = 0.0;       //!< delivered / accepted.
    double meanPreFaultLatency = 0.0;
    double meanPostFaultLatency = 0.0;
    double meanRecoveryCycles = 0.0;
    Cycle maxRecoveryCycles = 0;
    std::uint64_t flitEvents = 0;  //!< Engine work across all trials.
    std::uint32_t quarantinedTrials = 0;  //!< Watchdog gave up.
    /**
     * Trials replayed from the journal rather than run. Excluded
     * (with wallSeconds) from byte-identity comparisons: a resumed
     * campaign matches an uninterrupted one on every other field.
     */
    std::uint32_t resumedTrials = 0;
    double wallSeconds = 0.0;      //!< Wall-clock for the campaign.
    /**
     * Merged per-trial self-profiles (base.profileEnabled), folded in
     * trial order. Resumed trials contribute nothing — their wall
     * time was spent in an earlier process. Excluded (with
     * wallSeconds) from byte-identity comparisons.
     */
    ProfileData profile;
};

/**
 * Run `cfg.trials` seeded trials, fanned out across `cfg.base.jobs`
 * worker threads (resolveJobs; trials are fully independent). Per-
 * trial outcomes are appended to `out` in trial order when non-null —
 * identical to a sequential campaign — and the return value
 * aggregates them.
 *
 * With `cfg.journalPath` set the campaign is crash-resumable: every
 * completed trial is journaled durably, a restart replays the journal
 * and runs only the missing trials, and the final summary is
 * bit-identical to an uninterrupted campaign (wallSeconds and
 * resumedTrials aside). Trials that exhaust their watchdog budget are
 * quarantined and reported, never silently dropped.
 */
CampaignSummary runCampaign(const CampaignConfig& cfg,
                            std::vector<TrialOutcome>* out = nullptr);

} // namespace crnet

#endif // CRNET_FAULT_CAMPAIGN_HH
