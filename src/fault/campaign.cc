#include "src/fault/campaign.hh"

#include <algorithm>

#include "src/core/network.hh"
#include "src/sim/log.hh"
#include "src/sim/parallel.hh"
#include "src/sim/walltime.hh"

namespace crnet {

void
DeliveryLedger::onAccepted(const PendingMessage& msg)
{
    LedgerEntry e;
    e.src = msg.src;
    e.dst = msg.dst;
    e.createdAt = msg.createdAt;
    e.measured = msg.measured;
    if (!entries_.emplace(msg.id, e).second)
        panic("message ", msg.id, " accepted twice");
}

void
DeliveryLedger::onDelivered(const DeliveredMessage& msg)
{
    auto it = entries_.find(msg.id);
    if (it == entries_.end()) {
        ++unknown_;
        return;
    }
    LedgerEntry& e = it->second;
    if (e.fate == MessageFate::Delivered) {
        ++duplicates_;
        return;
    }
    if (e.fate == MessageFate::Refused) {
        // The sink finalized a kill-cut copy after the source gave
        // up. The message arrived: delivery wins.
        e.deliveredAfterRefusal = true;
        ++refusalRaces_;
        --refused_;
    }
    e.fate = MessageFate::Delivered;
    e.resolvedAt = msg.deliveredAt;
    e.attempts = msg.attempts;
    e.corrupted = msg.corrupted;
    ++delivered_;
    if (msg.corrupted)
        ++corrupted_;
}

void
DeliveryLedger::onRefused(const PendingMessage& msg, Cycle now)
{
    auto it = entries_.find(msg.id);
    if (it == entries_.end()) {
        ++unknown_;
        return;
    }
    LedgerEntry& e = it->second;
    if (e.fate != MessageFate::Pending)
        return;  // Already delivered; the refusal loses the race.
    e.fate = MessageFate::Refused;
    e.resolvedAt = now;
    e.attempts = msg.attempt;
    ++refused_;
}

CRNET_ALLOW("unordered-iter",
            "sorts the hash-ordered ledger into MsgId order before "
            "returning; the one sanctioned crossing from entries_ to "
            "result-affecting consumers")
std::vector<std::pair<MsgId, const LedgerEntry*>>
DeliveryLedger::sortedEntries() const
{
    std::vector<std::pair<MsgId, const LedgerEntry*>> sorted;
    sorted.reserve(entries_.size());
    for (const auto& entry : entries_)
        sorted.emplace_back(entry.first, &entry.second);
    std::sort(sorted.begin(), sorted.end(),
              [](const auto& a, const auto& b) {
                  return a.first < b.first;
              });
    return sorted;
}

namespace {

CRNET_RESULT_AFFECTING
TrialOutcome
runTrial(const CampaignConfig& cc, std::uint32_t trial)
{
    SimConfig cfg = cc.base;
    cfg.seed = cc.seedBase + trial;

    Network net(cfg);
    DeliveryLedger ledger;
    net.attachLedger(&ledger);

    net.setMeasuring(false);
    net.run(cfg.warmupCycles);
    net.setMeasuring(true);
    net.run(cfg.measureCycles);
    net.setMeasuring(false);
    net.setTrafficEnabled(false);

    // Drain: let in-flight worms, retries and teardown traffic play
    // out until the network is quiescent (or provably stuck). The
    // final step is clamped so the drain cap is honored exactly.
    Cycle drained = 0;
    while (!net.quiescent() && !net.deadlocked() &&
           drained < cc.drainCap) {
        const Cycle step = std::min<Cycle>(64, cc.drainCap - drained);
        net.run(step);
        drained += step;
    }

    TrialOutcome t;
    t.trial = trial;
    t.seed = cfg.seed;
    t.accepted = ledger.accepted();
    t.delivered = ledger.delivered();
    t.refused = ledger.refused();
    t.pendingAtEnd = ledger.pending();
    t.duplicates = ledger.duplicates();
    t.faultEvents = net.stats().faultEventsApplied.value();
    t.flitsLost = net.stats().flitsLostOnDeadLinks.value();
    t.receiverTimeouts = net.stats().receiverTimeouts.value();
    t.deadlocked = net.deadlocked();
    t.fullyAccounted = ledger.fullyAccounted() && !t.deadlocked;
    t.cyclesRun = net.now();
    t.flitEvents = net.stats().flitsInjected.value() +
                   net.stats().router.flitsForwarded.value() +
                   net.stats().flitsConsumed.value();

    const FaultSchedule* sched = net.schedule();
    t.firstFaultAt =
        sched != nullptr ? sched->firstEventCycle() : 0;

    // Latency transient and recovery time, from the ledger itself.
    // MsgId order, not hash order: these are float accumulations, so
    // the sums (and hence the reported means) must not depend on the
    // unordered_map's bucket layout.
    double pre_sum = 0.0, post_sum = 0.0;
    std::uint64_t pre_n = 0, post_n = 0;
    Cycle last_pre_resolved = 0;
    for (const auto& entry : ledger.sortedEntries()) {
        const LedgerEntry& e = *entry.second;
        if (e.fate != MessageFate::Delivered)
            continue;
        const double lat =
            static_cast<double>(e.resolvedAt - e.createdAt);
        if (t.firstFaultAt != 0 && e.createdAt >= t.firstFaultAt) {
            post_sum += lat;
            ++post_n;
        } else {
            pre_sum += lat;
            ++pre_n;
            if (e.resolvedAt > last_pre_resolved)
                last_pre_resolved = e.resolvedAt;
        }
    }
    t.preFaultLatency = pre_n > 0 ? pre_sum / pre_n : 0.0;
    t.postFaultLatency = post_n > 0 ? post_sum / post_n : 0.0;
    if (t.firstFaultAt != 0 && last_pre_resolved > t.firstFaultAt)
        t.recoveryCycles = last_pre_resolved - t.firstFaultAt;
    return t;
}

} // namespace

CampaignSummary
runCampaign(const CampaignConfig& cc, std::vector<TrialOutcome>* out)
{
    const WallTimer timer;
    CampaignSummary s;
    s.trials = cc.trials;

    // Trials are fully independent (each owns its Network, Rng and
    // ledger), so fan them out and aggregate in trial order — the
    // summary and the per-trial rows match a sequential campaign
    // bit for bit.
    std::vector<TrialOutcome> trials(cc.trials);
    parallelFor(cc.trials, resolveJobs(cc.base.jobs),
                [&](std::size_t trial) {
                    trials[trial] = runTrial(
                        cc, static_cast<std::uint32_t>(trial));
                });

    double pre_sum = 0.0, post_sum = 0.0, rec_sum = 0.0;
    std::uint32_t pre_n = 0, post_n = 0;
    for (const TrialOutcome& t : trials) {
        if (t.fullyAccounted)
            ++s.accountedTrials;
        if (t.deadlocked)
            ++s.deadlockedTrials;
        s.accepted += t.accepted;
        s.delivered += t.delivered;
        s.refused += t.refused;
        s.pending += t.pendingAtEnd;
        s.duplicates += t.duplicates;
        s.faultEvents += t.faultEvents;
        s.flitEvents += t.flitEvents;
        if (t.preFaultLatency > 0.0) {
            pre_sum += t.preFaultLatency;
            ++pre_n;
        }
        if (t.postFaultLatency > 0.0) {
            post_sum += t.postFaultLatency;
            ++post_n;
        }
        rec_sum += static_cast<double>(t.recoveryCycles);
        if (t.recoveryCycles > s.maxRecoveryCycles)
            s.maxRecoveryCycles = t.recoveryCycles;
    }
    if (out != nullptr)
        out->insert(out->end(), trials.begin(), trials.end());
    s.deliveryRate =
        s.accepted > 0
            ? static_cast<double>(s.delivered) / s.accepted
            : 0.0;
    s.meanPreFaultLatency = pre_n > 0 ? pre_sum / pre_n : 0.0;
    s.meanPostFaultLatency = post_n > 0 ? post_sum / post_n : 0.0;
    s.meanRecoveryCycles =
        cc.trials > 0 ? rec_sum / cc.trials : 0.0;
    s.wallSeconds = timer.seconds();
    return s;
}

} // namespace crnet
