#include "src/fault/campaign.hh"

#include <algorithm>
#include <atomic>
#include <memory>
#include <mutex>

#include "src/core/network.hh"
#include "src/sim/checksum.hh"
#include "src/sim/log.hh"
#include "src/sim/parallel.hh"
#include "src/sim/snapshot.hh"
#include "src/sim/telemetry.hh"
#include "src/sim/walltime.hh"

namespace crnet {

void
DeliveryLedger::onAccepted(const PendingMessage& msg)
{
    LedgerEntry e;
    e.src = msg.src;
    e.dst = msg.dst;
    e.createdAt = msg.createdAt;
    e.measured = msg.measured;
    if (!entries_.emplace(msg.id, e).second)
        panic("message ", msg.id, " accepted twice");
}

void
DeliveryLedger::onDelivered(const DeliveredMessage& msg)
{
    auto it = entries_.find(msg.id);
    if (it == entries_.end()) {
        ++unknown_;
        return;
    }
    LedgerEntry& e = it->second;
    if (e.fate == MessageFate::Delivered) {
        ++duplicates_;
        return;
    }
    if (e.fate == MessageFate::Refused) {
        // The sink finalized a kill-cut copy after the source gave
        // up. The message arrived: delivery wins.
        e.deliveredAfterRefusal = true;
        ++refusalRaces_;
        --refused_;
    }
    e.fate = MessageFate::Delivered;
    e.resolvedAt = msg.deliveredAt;
    e.attempts = msg.attempts;
    e.corrupted = msg.corrupted;
    ++delivered_;
    if (msg.corrupted)
        ++corrupted_;
}

void
DeliveryLedger::onRefused(const PendingMessage& msg, Cycle now)
{
    auto it = entries_.find(msg.id);
    if (it == entries_.end()) {
        ++unknown_;
        return;
    }
    LedgerEntry& e = it->second;
    if (e.fate != MessageFate::Pending)
        return;  // Already delivered; the refusal loses the race.
    e.fate = MessageFate::Refused;
    e.resolvedAt = now;
    e.attempts = msg.attempt;
    ++refused_;
}

CRNET_ALLOW("unordered-iter",
            "sorts the hash-ordered ledger into MsgId order before "
            "returning; the one sanctioned crossing from entries_ to "
            "result-affecting consumers")
std::vector<std::pair<MsgId, const LedgerEntry*>>
DeliveryLedger::sortedEntries() const
{
    std::vector<std::pair<MsgId, const LedgerEntry*>> sorted;
    sorted.reserve(entries_.size());
    for (const auto& entry : entries_)
        sorted.emplace_back(entry.first, &entry.second);
    std::sort(sorted.begin(), sorted.end(),
              [](const auto& a, const auto& b) {
                  return a.first < b.first;
              });
    return sorted;
}

CRNET_ALLOW("unordered-iter",
            "serializes via sortedEntries(), so the snapshot bytes "
            "never depend on hash order")
void
DeliveryLedger::saveState(StateWriter& w) const
{
    const auto sorted = sortedEntries();
    w.u64(sorted.size());
    for (const auto& entry : sorted) {
        w.u64(entry.first);
        const LedgerEntry& e = *entry.second;
        w.u32(e.src);
        w.u32(e.dst);
        w.u64(e.createdAt);
        w.b(e.measured);
        w.u8(static_cast<std::uint8_t>(e.fate));
        w.u64(e.resolvedAt);
        w.u16(e.attempts);
        w.b(e.corrupted);
        w.b(e.deliveredAfterRefusal);
    }
    w.u64(delivered_);
    w.u64(refused_);
    w.u64(duplicates_);
    w.u64(unknown_);
    w.u64(corrupted_);
    w.u64(refusalRaces_);
}

void
DeliveryLedger::loadState(StateReader& r)
{
    entries_.clear();
    const std::uint64_t count = r.u64();
    entries_.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        const MsgId id = r.u64();
        LedgerEntry e;
        e.src = r.u32();
        e.dst = r.u32();
        e.createdAt = r.u64();
        e.measured = r.b();
        e.fate = static_cast<MessageFate>(r.u8());
        e.resolvedAt = r.u64();
        e.attempts = r.u16();
        e.corrupted = r.b();
        e.deliveredAfterRefusal = r.b();
        entries_.emplace(id, e);
    }
    delivered_ = r.u64();
    refused_ = r.u64();
    duplicates_ = r.u64();
    unknown_ = r.u64();
    corrupted_ = r.u64();
    refusalRaces_ = r.u64();
}

namespace {

/** Short fault-event kind name for the status file. */
const char*
faultKindName(FaultEventKind kind)
{
    switch (kind) {
    case FaultEventKind::LinkDeath: return "link_death";
    case FaultEventKind::DirectedLinkDeath: return "directed_link_death";
    case FaultEventKind::RouterFailStop: return "router_fail_stop";
    case FaultEventKind::LinkRepair: return "link_repair";
    case FaultEventKind::BurstStart: return "burst_start";
    case FaultEventKind::BurstEnd: return "burst_end";
    }
    return "unknown";
}

/**
 * One attempt of one trial under a given drain budget. Sets
 * `*budget_exhausted` when the drain loop hit the cap while the
 * network was still active (neither quiescent nor deadlocked) — the
 * signal the watchdog retries on.
 *
 * Telemetry side-channels (all optional, all off the results path):
 * `status` gets phase/cycle updates at the existing phase boundaries,
 * `profile` accumulates this attempt's self-profile, and `fault_rows`
 * is refilled with the trial's first few fault events for the status
 * file's recent-events ring.
 */
CRNET_RESULT_AFFECTING
TrialOutcome
runTrialOnce(const CampaignConfig& cc, std::uint32_t trial,
             Cycle drain_cap, bool* budget_exhausted,
             StatusWriter* status, ProfileData* profile,
             std::vector<StatusWriter::FaultRow>* fault_rows)
{
    SimConfig cfg = cc.base;
    cfg.seed = cc.seedBase + trial;

    Network net(cfg);
    TickProfiler prof;
    if (cfg.profileEnabled && profile != nullptr)
        net.attachProfiler(&prof);
    DeliveryLedger ledger;
    net.attachLedger(&ledger);

    const WallTimer phase;
    if (status != nullptr)
        status->unitPhase(trial, "warmup", 0);
    net.setMeasuring(false);
    net.run(cfg.warmupCycles);
    const double warm_s = phase.seconds();
    if (status != nullptr)
        status->unitPhase(trial, "measure", net.now());
    net.setMeasuring(true);
    net.run(cfg.measureCycles);
    net.setMeasuring(false);
    net.setTrafficEnabled(false);
    const double meas_s = phase.seconds();
    if (status != nullptr)
        status->unitPhase(trial, "drain", net.now());

    // Drain: let in-flight worms, retries and teardown traffic play
    // out until the network is quiescent (or provably stuck). The
    // final step is clamped so the drain cap is honored exactly.
    Cycle drained = 0;
    while (!net.quiescent() && !net.deadlocked() &&
           drained < drain_cap) {
        const Cycle step = std::min<Cycle>(64, drain_cap - drained);
        net.run(step);
        drained += step;
        if (status != nullptr)
            status->unitPhase(trial, "drain", net.now());
    }
    *budget_exhausted = !net.quiescent() && !net.deadlocked();

    if (cfg.profileEnabled && profile != nullptr) {
        ProfileData& p = prof.data();
        p.warmupSeconds += warm_s;
        p.measureSeconds += meas_s - warm_s;
        p.drainSeconds += phase.seconds() - meas_s;
        profile->merge(p);
    }
    if (fault_rows != nullptr) {
        fault_rows->clear();
        const FaultSchedule* fs = net.schedule();
        if (fs != nullptr) {
            constexpr std::size_t kMaxRows = 4;
            for (const FaultEvent& ev : fs->events()) {
                if (fault_rows->size() >= kMaxRows)
                    break;
                fault_rows->push_back(StatusWriter::FaultRow{
                    trial, ev.at, faultKindName(ev.kind)});
            }
        }
    }

    TrialOutcome t;
    t.trial = trial;
    t.seed = cfg.seed;
    t.accepted = ledger.accepted();
    t.delivered = ledger.delivered();
    t.refused = ledger.refused();
    t.pendingAtEnd = ledger.pending();
    t.duplicates = ledger.duplicates();
    t.faultEvents = net.stats().faultEventsApplied.value();
    t.flitsLost = net.stats().flitsLostOnDeadLinks.value();
    t.receiverTimeouts = net.stats().receiverTimeouts.value();
    t.deadlocked = net.deadlocked();
    t.fullyAccounted = ledger.fullyAccounted() && !t.deadlocked;
    t.cyclesRun = net.now();
    t.flitEvents = net.stats().flitsInjected.value() +
                   net.stats().router.flitsForwarded.value() +
                   net.stats().flitsConsumed.value();

    const FaultSchedule* sched = net.schedule();
    t.firstFaultAt =
        sched != nullptr ? sched->firstEventCycle() : 0;

    // Latency transient and recovery time, from the ledger itself.
    // MsgId order, not hash order: these are float accumulations, so
    // the sums (and hence the reported means) must not depend on the
    // unordered_map's bucket layout.
    double pre_sum = 0.0, post_sum = 0.0;
    std::uint64_t pre_n = 0, post_n = 0;
    Cycle last_pre_resolved = 0;
    for (const auto& entry : ledger.sortedEntries()) {
        const LedgerEntry& e = *entry.second;
        if (e.fate != MessageFate::Delivered)
            continue;
        const double lat =
            static_cast<double>(e.resolvedAt - e.createdAt);
        if (t.firstFaultAt != 0 && e.createdAt >= t.firstFaultAt) {
            post_sum += lat;
            ++post_n;
        } else {
            pre_sum += lat;
            ++pre_n;
            if (e.resolvedAt > last_pre_resolved)
                last_pre_resolved = e.resolvedAt;
        }
    }
    t.preFaultLatency = pre_n > 0 ? pre_sum / pre_n : 0.0;
    t.postFaultLatency = post_n > 0 ? post_sum / post_n : 0.0;
    if (t.firstFaultAt != 0 && last_pre_resolved > t.firstFaultAt)
        t.recoveryCycles = last_pre_resolved - t.firstFaultAt;
    return t;
}

/**
 * Watchdog wrapper: a trial that exhausts its drain budget while
 * still active is re-run with a doubled cap, up to cc.trialRetries
 * times; one that exhausts every retry is quarantined. Deterministic
 * (the retry ladder depends only on the config), so a resumed
 * campaign replays the exact same fates.
 */
CRNET_RESULT_AFFECTING
TrialOutcome
runTrial(const CampaignConfig& cc, std::uint32_t trial,
         StatusWriter* status, ProfileData* profile)
{
    TrialOutcome t;
    std::vector<StatusWriter::FaultRow> faults;
    for (std::uint32_t attempt = 0;; ++attempt) {
        const Cycle cap = cc.drainCap << attempt;
        bool exhausted = false;
        t = runTrialOnce(cc, trial, cap, &exhausted, status, profile,
                         status != nullptr ? &faults : nullptr);
        t.budgetRetries = attempt;
        if (!exhausted)
            break;
        if (attempt >= cc.trialRetries) {
            t.quarantined = true;
            t.fullyAccounted = false;
            warn("campaign trial ", trial, " (seed ", t.seed,
                 ") still active after ", attempt + 1,
                 " drain budgets up to ", cap,
                 " cycles; quarantining it");
            break;
        }
        warn("campaign trial ", trial, " (seed ", t.seed,
             ") exhausted its ", cap,
             "-cycle drain budget; retrying with double the budget");
    }
    if (status != nullptr) {
        StatusWriter::UnitRow row;
        row.index = trial;
        row.seed = t.seed;
        row.ok = t.fullyAccounted;
        row.deadlocked = t.deadlocked;
        row.quarantined = t.quarantined;
        row.accepted = t.accepted;
        row.delivered = t.delivered;
        row.cycles = t.cyclesRun;
        status->unitDone(row, faults);
    }
    return t;
}

// --- Crash-resume journal ----------------------------------------------
//
// Layout: 8-byte magic "CRNETJNL", then CRC-guarded records of
//   u32 type | u32 payloadLen | payload | u32 crc32(payload)
// Record 0 is the header (journal version + campaign fingerprint);
// every subsequent record is one completed TrialOutcome. Appends go
// through read + append + atomicWriteFile, so a crash mid-append
// leaves the previous journal intact; a torn or corrupted tail is
// detected by the CRC and dropped with a warning on replay.

constexpr char kJournalMagic[8] = {'C', 'R', 'N', 'E',
                                   'T', 'J', 'N', 'L'};
constexpr std::uint32_t kJournalVersion = 1;
constexpr std::uint32_t kRecordHeader = 0;
constexpr std::uint32_t kRecordTrial = 1;

/** Campaign identity: the base config plus every campaign knob. */
std::uint64_t
campaignFingerprint(const CampaignConfig& cc)
{
    StateWriter w;
    w.u64(configFingerprint(cc.base));
    w.u32(cc.trials);
    w.u64(cc.seedBase);
    w.u64(cc.drainCap);
    w.u32(cc.trialRetries);
    const std::vector<std::uint8_t>& bytes = w.bytes();
    const std::uint32_t lo = crc32(bytes.data(), bytes.size());
    const std::uint32_t hi = crc32(bytes.data(), bytes.size(), lo);
    return (static_cast<std::uint64_t>(hi) << 32) | lo;
}

void
saveTrial(StateWriter& w, const TrialOutcome& t)
{
    w.u32(t.trial);
    w.u64(t.seed);
    w.u64(t.accepted);
    w.u64(t.delivered);
    w.u64(t.refused);
    w.u64(t.pendingAtEnd);
    w.u64(t.duplicates);
    w.u64(t.faultEvents);
    w.u64(t.flitsLost);
    w.u64(t.receiverTimeouts);
    w.u64(t.firstFaultAt);
    w.f64(t.preFaultLatency);
    w.f64(t.postFaultLatency);
    w.u64(t.recoveryCycles);
    w.b(t.deadlocked);
    w.b(t.fullyAccounted);
    w.u64(t.cyclesRun);
    w.u64(t.flitEvents);
    w.b(t.quarantined);
    w.u32(t.budgetRetries);
}

TrialOutcome
loadTrial(StateReader& r)
{
    TrialOutcome t;
    t.trial = r.u32();
    t.seed = r.u64();
    t.accepted = r.u64();
    t.delivered = r.u64();
    t.refused = r.u64();
    t.pendingAtEnd = r.u64();
    t.duplicates = r.u64();
    t.faultEvents = r.u64();
    t.flitsLost = r.u64();
    t.receiverTimeouts = r.u64();
    t.firstFaultAt = r.u64();
    t.preFaultLatency = r.f64();
    t.postFaultLatency = r.f64();
    t.recoveryCycles = r.u64();
    t.deadlocked = r.b();
    t.fullyAccounted = r.b();
    t.cyclesRun = r.u64();
    t.flitEvents = r.u64();
    t.quarantined = r.b();
    t.budgetRetries = r.u32();
    return t;
}

void
appendRecord(StateWriter& file, std::uint32_t type,
             const StateWriter& payload)
{
    file.u32(type);
    file.u32(static_cast<std::uint32_t>(payload.bytes().size()));
    const std::vector<std::uint8_t>& bytes = payload.bytes();
    for (std::uint8_t byte : bytes)
        file.u8(byte);
    file.u32(crc32(bytes.data(), bytes.size()));
}

/** A fresh journal: magic + header record. */
std::vector<std::uint8_t>
freshJournal(std::uint64_t fingerprint)
{
    StateWriter file;
    for (char c : kJournalMagic)
        file.u8(static_cast<std::uint8_t>(c));
    StateWriter header;
    header.u32(kJournalVersion);
    header.u64(fingerprint);
    appendRecord(file, kRecordHeader, header);
    return file.bytes();
}

/**
 * Replay a journal into `trials`/`have` (sized cc.trials). Returns
 * the number of trials replayed. A missing file, bad magic or corrupt
 * header is a cold start (fresh journal bytes are left in
 * `journal_bytes`); a valid header whose fingerprint differs from
 * this campaign's is fatal — resuming a *different* campaign into
 * this one is user error, not corruption. A corrupt or truncated
 * record tail keeps the good prefix with a warning.
 */
std::uint32_t
replayJournal(const CampaignConfig& cc, std::uint64_t fingerprint,
              std::vector<TrialOutcome>& trials,
              std::vector<std::uint8_t>& have,
              std::vector<std::uint8_t>& journal_bytes)
{
    journal_bytes = freshJournal(fingerprint);
    std::vector<std::uint8_t> file;
    if (!readFileBytes(cc.journalPath, file).empty())
        return 0;  // Missing or unreadable: cold start.

    StateReader r(file);
    bool magicOk = r.remaining() >= sizeof(kJournalMagic);
    if (magicOk)
        for (char c : kJournalMagic)
            if (r.u8() != static_cast<std::uint8_t>(c))
                magicOk = false;
    if (!magicOk) {
        warn("campaign journal ", cc.journalPath,
             " has a bad magic number; starting fresh");
        return 0;
    }

    std::uint32_t replayed = 0;
    std::size_t goodEnd = file.size() - r.remaining();
    bool sawHeader = false;
    while (r.remaining() > 0) {
        if (r.remaining() < 8)
            break;  // Torn mid-frame.
        const std::uint32_t type = r.u32();
        const std::uint32_t len = r.u32();
        if (r.remaining() < static_cast<std::uint64_t>(len) + 4)
            break;  // Torn mid-payload.
        const std::size_t payloadAt = file.size() - r.remaining();
        StateReader payload(file.data() + payloadAt, len);
        r.skip(len);
        const std::uint32_t want = r.u32();
        if (crc32(file.data() + payloadAt, len) != want)
            break;  // Corrupted record; drop it and the rest.
        if (!sawHeader) {
            if (type != kRecordHeader)
                break;
            const std::uint32_t version = payload.u32();
            if (version != kJournalVersion) {
                warn("campaign journal ", cc.journalPath,
                     " has record version ", version,
                     "; this build writes version ", kJournalVersion,
                     " — starting fresh");
                return 0;
            }
            const std::uint64_t theirs = payload.u64();
            if (theirs != fingerprint)
                fatal("campaign journal ", cc.journalPath,
                      " belongs to a different campaign (fingerprint ",
                      theirs, ", expected ", fingerprint,
                      "); refusing to resume — delete the journal to "
                      "start over");
            sawHeader = true;
        } else if (type == kRecordTrial) {
            const TrialOutcome t = loadTrial(payload);
            if (t.trial < cc.trials) {
                if (!have[t.trial])
                    ++replayed;
                trials[t.trial] = t;
                have[t.trial] = 1;
            } else {
                warn("campaign journal ", cc.journalPath,
                     " records trial ", t.trial, " beyond ",
                     cc.trials, " trials; ignoring it");
            }
        }
        // Unknown record types are skipped (forward compatibility).
        goodEnd = file.size() - r.remaining();
    }
    if (goodEnd < file.size())
        warn("campaign journal ", cc.journalPath, " has ",
             file.size() - goodEnd,
             " corrupt or torn trailing bytes; resuming from the ",
             replayed, " intact trial records");
    if (!sawHeader)
        return 0;
    journal_bytes.assign(file.begin(),
                         file.begin() +
                             static_cast<std::ptrdiff_t>(goodEnd));
    return replayed;
}

} // namespace

CampaignSummary
runCampaign(const CampaignConfig& cc, std::vector<TrialOutcome>* out)
{
    const WallTimer timer;
    CampaignSummary s;
    s.trials = cc.trials;

    std::vector<TrialOutcome> trials(cc.trials);
    std::vector<std::uint8_t> have(cc.trials, 0);

    // Crash-resume: replay completed trials from the journal, then
    // run only the missing ones, appending each durably as it lands.
    const bool journaled = !cc.journalPath.empty();
    std::vector<std::uint8_t> journalBytes;
    std::mutex journalMutex;
    if (journaled) {
        const std::uint64_t fp = campaignFingerprint(cc);
        s.resumedTrials =
            replayJournal(cc, fp, trials, have, journalBytes);
        if (s.resumedTrials > 0)
            inform("campaign journal ", cc.journalPath, ": resuming "
                   "with ", s.resumedTrials, " of ", cc.trials,
                   " trials replayed");
        const std::string err =
            atomicWriteFile(cc.journalPath, journalBytes);
        if (!err.empty())
            fatal("cannot write campaign journal: ", err);
    }

    // Live status (status=<path>): purely observational — the summary
    // and trial rows are identical with or without it. Replayed trials
    // are reported up front so the live aggregates cover the whole
    // campaign, not just the trials this process runs.
    std::unique_ptr<StatusWriter> status;
    if (!cc.base.statusFile.empty()) {
        status = std::make_unique<StatusWriter>(
            cc.base.statusFile, cc.base.statusEverySeconds, "campaign",
            cc.trials, resolveJobs(cc.base.jobs));
        status->noteResumed(s.resumedTrials);
        for (std::uint32_t i = 0; i < cc.trials; ++i) {
            if (!have[i])
                continue;
            const TrialOutcome& t = trials[i];
            StatusWriter::UnitRow row;
            row.index = i;
            row.seed = t.seed;
            row.ok = t.fullyAccounted;
            row.deadlocked = t.deadlocked;
            row.quarantined = t.quarantined;
            row.accepted = t.accepted;
            row.delivered = t.delivered;
            row.cycles = t.cyclesRun;
            status->unitDone(row, {});
        }
    }

    // Journal telemetry: registry-owned atomics, observability only.
    std::atomic<std::uint64_t>* const journalBytesCtr =
        Telemetry::instance().counter("campaign.journal_bytes");
    std::atomic<std::uint64_t>* const trialsDoneCtr =
        Telemetry::instance().counter("campaign.trials_completed");

    // Trials are fully independent (each owns its Network, Rng and
    // ledger), so fan them out and aggregate in trial order — the
    // summary and the per-trial rows match a sequential campaign
    // (and a resumed one) bit for bit regardless of completion order.
    // Per-trial self-profiles, merged into the summary in trial order
    // after the fan-out (resumed trials contribute nothing).
    std::vector<ProfileData> profs(cc.trials);

    parallelFor(cc.trials, resolveJobs(cc.base.jobs),
                [&](std::size_t trial) {
                    if (have[trial])
                        return;
                    trials[trial] = runTrial(
                        cc, static_cast<std::uint32_t>(trial),
                        status.get(), &profs[trial]);
                    trialsDoneCtr->fetch_add(
                        1, std::memory_order_relaxed);
                    if (!journaled)
                        return;
                    StateWriter payload;
                    saveTrial(payload, trials[trial]);
                    const std::lock_guard<std::mutex> lock(
                        journalMutex);
                    StateWriter record;
                    appendRecord(record, kRecordTrial, payload);
                    journalBytes.insert(journalBytes.end(),
                                        record.bytes().begin(),
                                        record.bytes().end());
                    journalBytesCtr->fetch_add(
                        record.bytes().size(),
                        std::memory_order_relaxed);
                    const std::string err = atomicWriteFile(
                        cc.journalPath, journalBytes);
                    if (!err.empty())
                        warn("cannot append to campaign journal: ",
                             err, " (trial ", trial,
                             " will re-run after a crash)");
                });

    double pre_sum = 0.0, post_sum = 0.0, rec_sum = 0.0;
    std::uint32_t pre_n = 0, post_n = 0;
    for (const TrialOutcome& t : trials) {
        if (t.fullyAccounted)
            ++s.accountedTrials;
        if (t.deadlocked)
            ++s.deadlockedTrials;
        if (t.quarantined)
            ++s.quarantinedTrials;
        s.accepted += t.accepted;
        s.delivered += t.delivered;
        s.refused += t.refused;
        s.pending += t.pendingAtEnd;
        s.duplicates += t.duplicates;
        s.faultEvents += t.faultEvents;
        s.flitEvents += t.flitEvents;
        if (t.preFaultLatency > 0.0) {
            pre_sum += t.preFaultLatency;
            ++pre_n;
        }
        if (t.postFaultLatency > 0.0) {
            post_sum += t.postFaultLatency;
            ++post_n;
        }
        rec_sum += static_cast<double>(t.recoveryCycles);
        if (t.recoveryCycles > s.maxRecoveryCycles)
            s.maxRecoveryCycles = t.recoveryCycles;
    }
    if (out != nullptr)
        out->insert(out->end(), trials.begin(), trials.end());
    s.deliveryRate =
        s.accepted > 0
            ? static_cast<double>(s.delivered) / s.accepted
            : 0.0;
    s.meanPreFaultLatency = pre_n > 0 ? pre_sum / pre_n : 0.0;
    s.meanPostFaultLatency = post_n > 0 ? post_sum / post_n : 0.0;
    s.meanRecoveryCycles =
        cc.trials > 0 ? rec_sum / cc.trials : 0.0;
    for (const ProfileData& p : profs)
        s.profile.merge(p);
    if (status != nullptr)
        status->finish();
    s.wallSeconds = timer.seconds();
    return s;
}

} // namespace crnet
