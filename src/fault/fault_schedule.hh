/**
 * @file
 * Timed fault events fired while the simulation runs.
 *
 * A FaultSchedule is a sorted list of events — link death (directed
 * or both directions), fail-stop routers (every incident link dies
 * atomically), link repair, and transient-corruption burst windows —
 * that the Network pops at the start of each cycle and applies to the
 * FaultModel plus the recovery plumbing (worm teardown, credit-ledger
 * normalization).
 *
 * Schedules come from two sources, which can be combined:
 *
 *  - Stochastic placement from SimConfig (`dyn_link_kills` etc.):
 *    random links/routers, respecting the same degree floor as
 *    permanent faults, at cycles drawn uniformly from the configured
 *    fault window. Each trial's Rng gives reproducible campaigns.
 *  - A scenario file (`fault_scenario=path`), one event per line:
 *
 *        # cycle  event         args
 *        500      kill_link     12 3
 *        800      kill_directed 7 1
 *        1000     kill_router   9
 *        1500     repair_link   12 3
 *        2000     burst         0.01 300
 *
 *    `burst RATE LEN` raises the transient-corruption rate to RATE
 *    for LEN cycles. Blank lines and `#` comments are ignored; any
 *    syntax or range error is fatal with the offending line number.
 */

#ifndef CRNET_FAULT_FAULT_SCHEDULE_HH
#define CRNET_FAULT_FAULT_SCHEDULE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/config.hh"
#include "src/sim/rng.hh"
#include "src/sim/types.hh"
#include "src/topology/topology.hh"

namespace crnet {

class StateWriter;
class StateReader;

/** What a scheduled fault event does when it fires. */
enum class FaultEventKind : std::uint8_t {
    LinkDeath,          //!< Both directions of (node, port) die.
    DirectedLinkDeath,  //!< Only the channel leaving (node, port).
    RouterFailStop,     //!< All links incident to `node` die.
    LinkRepair,         //!< Both directions of (node, port) revive.
    BurstStart,         //!< Transient rate becomes max(base, rate).
    BurstEnd            //!< Transient rate reverts to the base rate.
};

/** One timed fault event. */
struct FaultEvent
{
    Cycle at = 0;
    FaultEventKind kind = FaultEventKind::LinkDeath;
    NodeId node = kInvalidNode;
    PortId port = kInvalidPort;
    double rate = 0.0;  //!< BurstStart only.
};

/** A human-readable one-line description (forensics, logs). */
std::string toString(const FaultEvent& e);

/** Sorted, replayable list of fault events. */
class FaultSchedule
{
  public:
    FaultSchedule() = default;

    /**
     * Build the stochastic part of a schedule from config keys
     * (dyn_link_kills, dyn_router_kills, burst_*, ...) and merge in
     * the scenario file when `fault_scenario` is set.
     */
    static FaultSchedule fromConfig(const SimConfig& cfg,
                                    const Topology& topo, Rng rng);

    /** Parse a scenario file (fatal on any error). */
    static FaultSchedule fromFile(const std::string& path,
                                  const Topology& topo);

    /** Parse scenario text (tests; `where` labels diagnostics). */
    static FaultSchedule fromString(const std::string& text,
                                    const Topology& topo,
                                    const std::string& where = "<str>");

    void add(const FaultEvent& e);
    void merge(const FaultSchedule& other);

    /** Append every not-yet-fired event with at <= now to `out`. */
    void collectDue(Cycle now, std::vector<FaultEvent>& out);

    bool empty() const { return events_.empty(); }
    std::size_t size() const { return events_.size(); }
    std::size_t firedCount() const { return cursor_; }

    /** All events, sorted by firing cycle. */
    const std::vector<FaultEvent>& events() const { return events_; }

    /** Cycle of the earliest event, or 0 for an empty schedule. */
    Cycle firstEventCycle() const;

    /**
     * Cycle of the earliest *unfired* event, or kNeverCycle when the
     * schedule is exhausted — the fault deadline the event scheduler
     * may not jump across.
     */
    Cycle nextEventCycle() const
    {
        return cursor_ < events_.size() ? events_[cursor_].at
                                        : kNeverCycle;
    }

    /**
     * Stochastic placements requested via config but not honored
     * because the degree floor ran out of killable links. Campaigns
     * record this instead of aborting.
     */
    std::uint32_t placementShortfall() const { return shortfall_; }

    /**
     * Checkpoint support (snapshot.hh). The full event list is
     * serialized — not just the cursor — because a schedule can be
     * grown at runtime (Network::injectFaultEvent), so the restored
     * side cannot rebuild it from config alone.
     */
    void saveState(StateWriter& w) const;
    void loadState(StateReader& r);

  private:
    std::vector<FaultEvent> events_;  //!< Sorted by `at`.
    std::size_t cursor_ = 0;          //!< First unfired event.
    std::uint32_t shortfall_ = 0;
};

} // namespace crnet

#endif // CRNET_FAULT_FAULT_SCHEDULE_HH
