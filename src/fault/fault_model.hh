/**
 * @file
 * Fault injection for FCR evaluation.
 *
 * Two fault classes, matching the paper's Section 6.2 evaluation:
 *
 *  - Transient faults: each flit-hop traversal independently corrupts
 *    the flit with probability `transientFaultRate`. Corruption
 *    scrambles the payload (so the CRC fails) and sets the detection
 *    flag the receiver logic keys on.
 *  - Permanent faults: whole physical links (both directions) are dead
 *    from cycle 0. Routing algorithms query linkOk() and never route a
 *    header over a dead link; flits already modeled as traversing a
 *    link that dies mid-flight do not occur because permanent faults
 *    are injected before the simulation starts.
 *
 * The permanent-fault chooser keeps every node at a minimum healthy
 * degree so the network stays usable (the paper likewise assumes the
 * fault pattern leaves the network connected).
 */

#ifndef CRNET_FAULT_FAULT_MODEL_HH
#define CRNET_FAULT_FAULT_MODEL_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "src/router/flit.hh"
#include "src/sim/rng.hh"
#include "src/sim/types.hh"
#include "src/topology/topology.hh"

namespace crnet {

/** Link-fault and flit-corruption model. */
class FaultModel
{
  public:
    /**
     * @param topo Topology (for link enumeration / endpoints).
     * @param transient_rate P(corruption) per flit-hop.
     * @param rng Dedicated random stream.
     */
    FaultModel(const Topology& topo, double transient_rate, Rng rng);

    /**
     * Kill `count` random physical links (both directions). Links are
     * rejected if killing them would leave an endpoint with fewer than
     * `min_degree` healthy network ports.
     */
    void injectPermanentFaults(std::uint32_t count,
                               std::uint32_t min_degree = 2);

    /** Kill one specific directed channel (tests, targeted scenarios). */
    void killDirectedLink(NodeId node, PortId port);

    /** Health of the directed channel leaving `node` through `port`. */
    bool linkOk(NodeId node, PortId port) const;

    /**
     * Possibly corrupt a flit traversing one hop. Returns true when a
     * fault was injected this call.
     */
    bool maybeCorrupt(Flit& flit);

    std::uint64_t corruptionsInjected() const { return corruptions_; }
    std::uint32_t permanentFaultCount() const { return permanent_; }

    /** All dead directed channels as (node, port) pairs. */
    std::vector<std::pair<NodeId, PortId>> deadLinks() const;

  private:
    std::size_t index(NodeId node, PortId port) const;
    std::uint32_t healthyDegree(NodeId node) const;

    const Topology& topo_;
    double transientRate_;
    Rng rng_;
    std::vector<bool> dead_;  //!< Indexed by node * numPorts + port.
    std::uint64_t corruptions_ = 0;
    std::uint32_t permanent_ = 0;
};

} // namespace crnet

#endif // CRNET_FAULT_FAULT_MODEL_HH
