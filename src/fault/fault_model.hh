/**
 * @file
 * Fault injection for CR/FCR evaluation.
 *
 * Fault classes, matching (and extending) the paper's Section 6.2
 * evaluation:
 *
 *  - Transient faults: each flit-hop traversal independently corrupts
 *    the flit with probability `transientFaultRate`. Corruption
 *    scrambles the payload (so the CRC fails) and sets the detection
 *    flag the receiver logic keys on. A burst window (FaultSchedule)
 *    can temporarily raise the effective rate.
 *  - Permanent faults: whole physical links (both directions) dead
 *    from cycle 0, placed by `injectPermanentFaults`.
 *  - Dynamic faults: links killed *while the simulation runs* via
 *    `killLink` / `killDirectedLink`, possibly under an active worm.
 *    The Network owns the recovery plumbing (teardown of stranded
 *    channel state, absorption of in-flight events on the dead wire);
 *    this class only tracks which directed channels are usable.
 *    Links can also be revived (repair events).
 *
 * `killLink` kills both directions of a physical link — the usual
 * "cable cut" model, and what `injectPermanentFaults` places.
 * `killDirectedLink` kills a single direction, which models a failed
 * driver/receiver pair on one side: traffic still flows the other
 * way. `deadLinks()` reports which kind each dead entry is.
 *
 * The permanent-fault chooser keeps every node at a minimum healthy
 * degree so the network stays usable (the paper likewise assumes the
 * fault pattern leaves the network connected).
 */

#ifndef CRNET_FAULT_FAULT_MODEL_HH
#define CRNET_FAULT_FAULT_MODEL_HH

#include <cstdint>
#include <vector>

#include "src/router/flit.hh"
#include "src/sim/rng.hh"
#include "src/sim/types.hh"
#include "src/topology/topology.hh"

namespace crnet {

class StateWriter;
class StateReader;

/** How much of a physical link a dead entry covers. */
enum class DeadLinkKind : std::uint8_t {
    Directed,      //!< Only this direction is dead.
    Bidirectional  //!< The reverse direction is dead too.
};

/** One dead directed channel, as reported by deadLinks(). */
struct DeadLink
{
    NodeId node = kInvalidNode;
    PortId port = kInvalidPort;
    DeadLinkKind kind = DeadLinkKind::Directed;
};

/** Link-fault and flit-corruption model. */
class FaultModel
{
  public:
    /**
     * @param topo Topology (for link enumeration / endpoints).
     * @param transient_rate P(corruption) per flit-hop.
     * @param rng Dedicated random stream.
     */
    FaultModel(const Topology& topo, double transient_rate, Rng rng);

    /**
     * Kill `count` random physical links (both directions). Links are
     * rejected if killing them would leave an endpoint with fewer
     * than `min_degree` healthy network ports.
     *
     * When placement stalls (the degree floor leaves no killable
     * link), the default is fatal() — a directly configured fault
     * count that cannot be honored is a user error. Monte-Carlo
     * campaigns pass `allow_partial = true` to instead stop early and
     * learn the shortfall from the return value.
     *
     * @return The number of links actually killed.
     */
    std::uint32_t injectPermanentFaults(std::uint32_t count,
                                        std::uint32_t min_degree = 2,
                                        bool allow_partial = false);

    /**
     * Kill one specific directed channel (one direction only; the
     * reverse channel keeps working). Fatal on a nonexistent link.
     */
    void killDirectedLink(NodeId node, PortId port);

    /** Kill both directions of the physical link at (node, port). */
    void killLink(NodeId node, PortId port);

    /** Revive one directed channel (no-op when already alive). */
    void reviveDirectedLink(NodeId node, PortId port);

    /** Revive both directions of the physical link at (node, port). */
    void reviveLink(NodeId node, PortId port);

    /** Health of the directed channel leaving `node` through `port`. */
    bool linkOk(NodeId node, PortId port) const;

    /**
     * Possibly corrupt a flit traversing one hop. Returns true when a
     * fault was injected this call.
     */
    bool maybeCorrupt(Flit& flit);

    /**
     * Transient burst window: while set, the effective corruption
     * probability is max(base rate, burst rate).
     */
    void setBurstRate(double rate);
    void clearBurstRate() { burstRate_ = 0.0; }

    /** The corruption probability currently applied per flit-hop. */
    double effectiveTransientRate() const;

    std::uint64_t corruptionsInjected() const { return corruptions_; }
    std::uint32_t permanentFaultCount() const { return permanent_; }

    /** Dead directed channels currently in effect. */
    std::uint32_t deadDirectedCount() const;

    /**
     * All dead directed channels. An entry is Bidirectional when the
     * reverse channel is dead too (both directions are still listed,
     * each from its own endpoint's perspective).
     */
    std::vector<DeadLink> deadLinks() const;

    // --- Checkpoint support (snapshot.hh) ---------------------------

    /** Burst window, RNG stream, dead map and counters. */
    void saveState(StateWriter& w) const;
    void loadState(StateReader& r);

    /** Replace the RNG stream (warm-start reseeding). */
    void setRng(const Rng& rng) { rng_ = rng; }

  private:
    std::size_t index(NodeId node, PortId port) const;
    std::uint32_t healthyDegree(NodeId node) const;

    const Topology& topo_;
    double transientRate_;
    double burstRate_ = 0.0;
    Rng rng_;
    std::vector<bool> dead_;  //!< Indexed by node * numPorts + port.
    std::uint64_t corruptions_ = 0;
    std::uint32_t permanent_ = 0;
};

} // namespace crnet

#endif // CRNET_FAULT_FAULT_MODEL_HH
