#include "src/fault/fault_model.hh"

#include "src/sim/log.hh"
#include "src/sim/snapshot.hh"

namespace crnet {

FaultModel::FaultModel(const Topology& topo, double transient_rate,
                       Rng rng)
    : topo_(topo), transientRate_(transient_rate), rng_(rng),
      dead_(static_cast<std::size_t>(topo.numNodes()) * topo.numPorts(),
            false)
{
    if (transient_rate < 0.0 || transient_rate > 1.0)
        fatal("transient fault rate must be in [0, 1]");
}

std::size_t
FaultModel::index(NodeId node, PortId port) const
{
    return static_cast<std::size_t>(node) * topo_.numPorts() + port;
}

std::uint32_t
FaultModel::healthyDegree(NodeId node) const
{
    std::uint32_t degree = 0;
    for (PortId p = 0; p < topo_.numPorts(); ++p) {
        if (topo_.neighbor(node, p) != kInvalidNode && linkOk(node, p))
            ++degree;
    }
    return degree;
}

std::uint32_t
FaultModel::injectPermanentFaults(std::uint32_t count,
                                  std::uint32_t min_degree,
                                  bool allow_partial)
{
    std::uint32_t injected = 0;
    std::uint32_t attempts = 0;
    const std::uint32_t max_attempts = 1000 * (count + 1);
    while (injected < count) {
        if (++attempts > max_attempts) {
            if (allow_partial)
                return injected;
            fatal("could not place ", count, " permanent faults while "
                  "keeping node degree >= ", min_degree);
        }
        const auto node =
            static_cast<NodeId>(rng_.below(topo_.numNodes()));
        const auto port =
            static_cast<PortId>(rng_.below(topo_.numPorts()));
        const NodeId nbr = topo_.neighbor(node, port);
        if (nbr == kInvalidNode)
            continue;  // Mesh boundary: no physical link there.
        if (!linkOk(node, port))
            continue;  // Already dead.
        // Keep both endpoints above the degree floor after removing
        // one port from each (both directions of the physical link).
        if (healthyDegree(node) <= min_degree ||
            healthyDegree(nbr) <= min_degree) {
            continue;
        }
        dead_[index(node, port)] = true;
        dead_[index(nbr, oppositePort(port))] = true;
        ++injected;
        ++permanent_;
    }
    return injected;
}

void
FaultModel::killDirectedLink(NodeId node, PortId port)
{
    if (topo_.neighbor(node, port) == kInvalidNode)
        fatal("cannot kill nonexistent link (node ", node, ", port ",
              port, ")");
    dead_[index(node, port)] = true;
}

void
FaultModel::killLink(NodeId node, PortId port)
{
    const NodeId nbr = topo_.neighbor(node, port);
    if (nbr == kInvalidNode)
        fatal("cannot kill nonexistent link (node ", node, ", port ",
              port, ")");
    dead_[index(node, port)] = true;
    dead_[index(nbr, oppositePort(port))] = true;
}

void
FaultModel::reviveDirectedLink(NodeId node, PortId port)
{
    if (topo_.neighbor(node, port) == kInvalidNode)
        fatal("cannot revive nonexistent link (node ", node, ", port ",
              port, ")");
    dead_[index(node, port)] = false;
}

void
FaultModel::reviveLink(NodeId node, PortId port)
{
    const NodeId nbr = topo_.neighbor(node, port);
    if (nbr == kInvalidNode)
        fatal("cannot revive nonexistent link (node ", node, ", port ",
              port, ")");
    dead_[index(node, port)] = false;
    dead_[index(nbr, oppositePort(port))] = false;
}

bool
FaultModel::linkOk(NodeId node, PortId port) const
{
    return !dead_[index(node, port)];
}

void
FaultModel::setBurstRate(double rate)
{
    if (rate < 0.0 || rate > 1.0)
        fatal("burst fault rate must be in [0, 1]");
    burstRate_ = rate;
}

double
FaultModel::effectiveTransientRate() const
{
    return burstRate_ > transientRate_ ? burstRate_ : transientRate_;
}

bool
FaultModel::maybeCorrupt(Flit& flit)
{
    const double rate = effectiveTransientRate();
    if (rate <= 0.0 || !rng_.chance(rate))
        return false;
    // Scramble the payload without touching the stored CRC: the
    // receiver's checksum check then fails, which is the hardware
    // detection path. The explicit flag backs assertions in tests.
    flit.payload ^= 0xdeadbeefcafef00dULL ^ rng_.next();
    flit.corrupted = true;
    ++corruptions_;
    return true;
}

std::uint32_t
FaultModel::deadDirectedCount() const
{
    std::uint32_t n = 0;
    for (const bool d : dead_)
        n += d ? 1 : 0;
    return n;
}

std::vector<DeadLink>
FaultModel::deadLinks() const
{
    std::vector<DeadLink> out;
    for (NodeId node = 0; node < topo_.numNodes(); ++node) {
        for (PortId port = 0; port < topo_.numPorts(); ++port) {
            if (!dead_[index(node, port)])
                continue;
            const NodeId nbr = topo_.neighbor(node, port);
            DeadLink d;
            d.node = node;
            d.port = port;
            d.kind = (nbr != kInvalidNode &&
                      !linkOk(nbr, oppositePort(port)))
                         ? DeadLinkKind::Bidirectional
                         : DeadLinkKind::Directed;
            out.push_back(d);
        }
    }
    return out;
}

void
FaultModel::saveState(StateWriter& w) const
{
    w.f64(burstRate_);
    saveRng(w, rng_);
    w.u64(dead_.size());
    for (std::size_t i = 0; i < dead_.size(); ++i)
        w.b(dead_[i]);
    w.u64(corruptions_);
    w.u32(permanent_);
}

void
FaultModel::loadState(StateReader& r)
{
    burstRate_ = r.f64();
    loadRng(r, rng_);
    const std::uint64_t n = r.u64();
    if (n != dead_.size())
        panic("dead-link map size mismatch on restore: saved ", n,
              ", have ", dead_.size());
    for (std::size_t i = 0; i < dead_.size(); ++i)
        dead_[i] = r.b();
    corruptions_ = r.u64();
    permanent_ = r.u32();
}

} // namespace crnet
