#include "src/fault/fault_schedule.hh"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "src/sim/log.hh"
#include "src/sim/snapshot.hh"

namespace crnet {

namespace {

/**
 * Local view of which directed channels a schedule has already
 * committed to killing, so stochastic placement can respect the same
 * degree floor injectPermanentFaults uses — without touching the
 * live FaultModel (events have not fired yet).
 */
class PlannedDeaths
{
  public:
    explicit PlannedDeaths(const Topology& topo)
        : topo_(topo),
          dead_(static_cast<std::size_t>(topo.numNodes()) *
                    topo.numPorts(),
                false)
    {}

    bool dead(NodeId node, PortId port) const
    {
        return dead_[idx(node, port)];
    }

    void killDirected(NodeId node, PortId port)
    {
        dead_[idx(node, port)] = true;
    }

    void killBoth(NodeId node, PortId port)
    {
        dead_[idx(node, port)] = true;
        dead_[idx(topo_.neighbor(node, port), oppositePort(port))] =
            true;
    }

    std::uint32_t healthyDegree(NodeId node) const
    {
        std::uint32_t degree = 0;
        for (PortId p = 0; p < topo_.numPorts(); ++p) {
            if (topo_.neighbor(node, p) != kInvalidNode &&
                !dead(node, p)) {
                ++degree;
            }
        }
        return degree;
    }

  private:
    std::size_t idx(NodeId node, PortId port) const
    {
        return static_cast<std::size_t>(node) * topo_.numPorts() +
               port;
    }

    const Topology& topo_;
    std::vector<bool> dead_;
};

constexpr std::uint32_t kMinDegree = 2;

} // namespace

std::string
toString(const FaultEvent& e)
{
    std::ostringstream os;
    os << "cycle " << e.at << ": ";
    switch (e.kind) {
      case FaultEventKind::LinkDeath:
        os << "kill_link node " << e.node << " port " << e.port;
        break;
      case FaultEventKind::DirectedLinkDeath:
        os << "kill_directed node " << e.node << " port " << e.port;
        break;
      case FaultEventKind::RouterFailStop:
        os << "kill_router node " << e.node;
        break;
      case FaultEventKind::LinkRepair:
        os << "repair_link node " << e.node << " port " << e.port;
        break;
      case FaultEventKind::BurstStart:
        os << "burst_start rate " << e.rate;
        break;
      case FaultEventKind::BurstEnd:
        os << "burst_end";
        break;
    }
    return os.str();
}

void
FaultSchedule::add(const FaultEvent& e)
{
    if (cursor_ != 0)
        panic("FaultSchedule modified after events started firing");
    events_.push_back(e);
    std::stable_sort(events_.begin(), events_.end(),
                     [](const FaultEvent& a, const FaultEvent& b) {
                         return a.at < b.at;
                     });
}

void
FaultSchedule::merge(const FaultSchedule& other)
{
    if (cursor_ != 0)
        panic("FaultSchedule modified after events started firing");
    events_.insert(events_.end(), other.events_.begin(),
                   other.events_.end());
    shortfall_ += other.shortfall_;
    std::stable_sort(events_.begin(), events_.end(),
                     [](const FaultEvent& a, const FaultEvent& b) {
                         return a.at < b.at;
                     });
}

void
FaultSchedule::collectDue(Cycle now, std::vector<FaultEvent>& out)
{
    while (cursor_ < events_.size() && events_[cursor_].at <= now)
        out.push_back(events_[cursor_++]);
}

Cycle
FaultSchedule::firstEventCycle() const
{
    return events_.empty() ? 0 : events_.front().at;
}

FaultSchedule
FaultSchedule::fromConfig(const SimConfig& cfg, const Topology& topo,
                          Rng rng)
{
    FaultSchedule sched;

    // Fault window: default to the measurement phase so warmup
    // establishes steady state before the first failure.
    Cycle ws = cfg.faultWindowStart;
    Cycle we = cfg.faultWindowEnd;
    if (we == 0) {
        if (ws == 0)
            ws = cfg.warmupCycles;
        we = cfg.warmupCycles + cfg.measureCycles;
    }
    if (we <= ws)
        we = ws + 1;

    const auto draw_cycle = [&]() -> Cycle {
        return ws + rng.below(we - ws);
    };

    PlannedDeaths planned(topo);

    const auto place_link = [&](bool directed) -> bool {
        std::uint32_t attempts = 0;
        while (++attempts <= 1000) {
            const auto node =
                static_cast<NodeId>(rng.below(topo.numNodes()));
            const auto port =
                static_cast<PortId>(rng.below(topo.numPorts()));
            const NodeId nbr = topo.neighbor(node, port);
            if (nbr == kInvalidNode || planned.dead(node, port))
                continue;
            if (planned.healthyDegree(node) <= kMinDegree ||
                planned.healthyDegree(nbr) <= kMinDegree) {
                continue;
            }
            FaultEvent e;
            e.at = draw_cycle();
            e.kind = directed ? FaultEventKind::DirectedLinkDeath
                              : FaultEventKind::LinkDeath;
            e.node = node;
            e.port = port;
            sched.events_.push_back(e);
            if (directed)
                planned.killDirected(node, port);
            else
                planned.killBoth(node, port);
            if (cfg.linkRepairAfter > 0) {
                FaultEvent r;
                r.at = e.at + cfg.linkRepairAfter;
                r.kind = FaultEventKind::LinkRepair;
                r.node = node;
                r.port = port;
                sched.events_.push_back(r);
            }
            return true;
        }
        return false;
    };

    for (std::uint32_t i = 0; i < cfg.dynamicLinkKills; ++i) {
        if (!place_link(false))
            ++sched.shortfall_;
    }
    for (std::uint32_t i = 0; i < cfg.dynamicDirectedKills; ++i) {
        if (!place_link(true))
            ++sched.shortfall_;
    }

    for (std::uint32_t i = 0; i < cfg.dynamicRouterKills; ++i) {
        std::uint32_t attempts = 0;
        bool placed = false;
        while (!placed && ++attempts <= 1000) {
            const auto node =
                static_cast<NodeId>(rng.below(topo.numNodes()));
            // Every neighbor must keep its degree floor after losing
            // all channels to the failed router; the dead router's
            // own degree no longer matters (its NIC goes silent).
            bool ok = planned.healthyDegree(node) > 0;
            for (PortId p = 0; ok && p < topo.numPorts(); ++p) {
                const NodeId nbr = topo.neighbor(node, p);
                if (nbr == kInvalidNode || nbr == node ||
                    planned.dead(node, p)) {
                    continue;
                }
                std::uint32_t lost = 0;
                for (PortId q = 0; q < topo.numPorts(); ++q) {
                    if (topo.neighbor(nbr, q) == node &&
                        !planned.dead(nbr, q)) {
                        ++lost;
                    }
                }
                if (planned.healthyDegree(nbr) < kMinDegree + lost)
                    ok = false;
            }
            if (!ok)
                continue;
            FaultEvent e;
            e.at = draw_cycle();
            e.kind = FaultEventKind::RouterFailStop;
            e.node = node;
            sched.events_.push_back(e);
            for (PortId p = 0; p < topo.numPorts(); ++p) {
                if (topo.neighbor(node, p) != kInvalidNode &&
                    !planned.dead(node, p)) {
                    planned.killBoth(node, p);
                }
            }
            placed = true;
        }
        if (!placed)
            ++sched.shortfall_;
    }

    if (cfg.burstRate > 0.0 && cfg.burstLen > 0) {
        FaultEvent b;
        b.at = cfg.burstStart > 0 ? cfg.burstStart : ws;
        b.kind = FaultEventKind::BurstStart;
        b.rate = cfg.burstRate;
        sched.events_.push_back(b);
        FaultEvent e;
        e.at = b.at + cfg.burstLen;
        e.kind = FaultEventKind::BurstEnd;
        sched.events_.push_back(e);
    }

    std::stable_sort(sched.events_.begin(), sched.events_.end(),
                     [](const FaultEvent& a, const FaultEvent& b) {
                         return a.at < b.at;
                     });

    if (!cfg.faultScenario.empty())
        sched.merge(fromFile(cfg.faultScenario, topo));

    return sched;
}

FaultSchedule
FaultSchedule::fromFile(const std::string& path, const Topology& topo)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open fault scenario file '", path, "'");
    std::ostringstream text;
    text << in.rdbuf();
    return fromString(text.str(), topo, path);
}

FaultSchedule
FaultSchedule::fromString(const std::string& text, const Topology& topo,
                          const std::string& where)
{
    FaultSchedule sched;
    std::istringstream in(text);
    std::string line;
    std::size_t lineno = 0;

    const auto bad = [&](const std::string& why) {
        fatal("fault scenario ", where, ":", lineno, ": ", why,
              " in '", line, "'");
    };
    const auto check_link = [&](std::uint64_t node,
                                std::uint64_t port) {
        if (node >= topo.numNodes())
            bad("node out of range");
        if (port >= topo.numPorts())
            bad("port out of range");
        if (topo.neighbor(static_cast<NodeId>(node),
                          static_cast<PortId>(port)) == kInvalidNode) {
            bad("no physical link at that (node, port)");
        }
    };

    while (std::getline(in, line)) {
        ++lineno;
        const auto hash = line.find('#');
        std::string body =
            hash == std::string::npos ? line : line.substr(0, hash);
        std::istringstream ls(body);
        Cycle at = 0;
        std::string verb;
        if (!(ls >> at >> verb)) {
            // Blank or comment-only line.
            std::istringstream probe(body);
            std::string any;
            if (probe >> any)
                bad("expected '<cycle> <event> <args...>'");
            continue;
        }

        FaultEvent e;
        e.at = at;
        if (verb == "kill_link" || verb == "kill_directed" ||
            verb == "repair_link") {
            std::uint64_t node = 0;
            std::uint64_t port = 0;
            if (!(ls >> node >> port))
                bad("expected '<node> <port>'");
            check_link(node, port);
            e.node = static_cast<NodeId>(node);
            e.port = static_cast<PortId>(port);
            e.kind = verb == "kill_link"
                         ? FaultEventKind::LinkDeath
                         : verb == "kill_directed"
                               ? FaultEventKind::DirectedLinkDeath
                               : FaultEventKind::LinkRepair;
            sched.events_.push_back(e);
        } else if (verb == "kill_router") {
            std::uint64_t node = 0;
            if (!(ls >> node))
                bad("expected '<node>'");
            if (node >= topo.numNodes())
                bad("node out of range");
            e.node = static_cast<NodeId>(node);
            e.kind = FaultEventKind::RouterFailStop;
            sched.events_.push_back(e);
        } else if (verb == "burst") {
            double rate = 0.0;
            std::uint64_t len = 0;
            if (!(ls >> rate >> len))
                bad("expected '<rate> <cycles>'");
            if (rate < 0.0 || rate > 1.0)
                bad("rate must be in [0, 1]");
            if (len == 0)
                bad("burst length must be > 0");
            e.kind = FaultEventKind::BurstStart;
            e.rate = rate;
            sched.events_.push_back(e);
            FaultEvent end;
            end.at = at + len;
            end.kind = FaultEventKind::BurstEnd;
            sched.events_.push_back(end);
        } else {
            bad("unknown event '" + verb + "'");
        }
        std::string extra;
        if (ls >> extra)
            bad("trailing garbage '" + extra + "'");
    }

    std::stable_sort(sched.events_.begin(), sched.events_.end(),
                     [](const FaultEvent& a, const FaultEvent& b) {
                         return a.at < b.at;
                     });
    return sched;
}

void
FaultSchedule::saveState(StateWriter& w) const
{
    w.u64(events_.size());
    for (const FaultEvent& e : events_) {
        w.u64(e.at);
        w.u8(static_cast<std::uint8_t>(e.kind));
        w.u32(e.node);
        w.u16(e.port);
        w.f64(e.rate);
    }
    w.u64(cursor_);
    w.u32(shortfall_);
}

void
FaultSchedule::loadState(StateReader& r)
{
    events_.clear();
    const std::uint64_t n = r.u64();
    events_.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
        FaultEvent e;
        e.at = r.u64();
        e.kind = static_cast<FaultEventKind>(r.u8());
        e.node = r.u32();
        e.port = r.u16();
        e.rate = r.f64();
        events_.push_back(e);
    }
    cursor_ = static_cast<std::size_t>(r.u64());
    if (cursor_ > events_.size())
        panic("fault-schedule cursor ", cursor_, " beyond ",
              events_.size(), " events on restore");
    shortfall_ = r.u32();
}

} // namespace crnet
