# Empty dependencies file for crnet.
# This may be replaced when dependencies are built.
