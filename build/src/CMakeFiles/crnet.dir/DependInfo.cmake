
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/experiment.cc" "src/CMakeFiles/crnet.dir/core/experiment.cc.o" "gcc" "src/CMakeFiles/crnet.dir/core/experiment.cc.o.d"
  "/root/repo/src/core/network.cc" "src/CMakeFiles/crnet.dir/core/network.cc.o" "gcc" "src/CMakeFiles/crnet.dir/core/network.cc.o.d"
  "/root/repo/src/core/presets.cc" "src/CMakeFiles/crnet.dir/core/presets.cc.o" "gcc" "src/CMakeFiles/crnet.dir/core/presets.cc.o.d"
  "/root/repo/src/cost/router_cost.cc" "src/CMakeFiles/crnet.dir/cost/router_cost.cc.o" "gcc" "src/CMakeFiles/crnet.dir/cost/router_cost.cc.o.d"
  "/root/repo/src/fault/fault_model.cc" "src/CMakeFiles/crnet.dir/fault/fault_model.cc.o" "gcc" "src/CMakeFiles/crnet.dir/fault/fault_model.cc.o.d"
  "/root/repo/src/nic/injector.cc" "src/CMakeFiles/crnet.dir/nic/injector.cc.o" "gcc" "src/CMakeFiles/crnet.dir/nic/injector.cc.o.d"
  "/root/repo/src/nic/receiver.cc" "src/CMakeFiles/crnet.dir/nic/receiver.cc.o" "gcc" "src/CMakeFiles/crnet.dir/nic/receiver.cc.o.d"
  "/root/repo/src/router/router.cc" "src/CMakeFiles/crnet.dir/router/router.cc.o" "gcc" "src/CMakeFiles/crnet.dir/router/router.cc.o.d"
  "/root/repo/src/routing/dor.cc" "src/CMakeFiles/crnet.dir/routing/dor.cc.o" "gcc" "src/CMakeFiles/crnet.dir/routing/dor.cc.o.d"
  "/root/repo/src/routing/duato.cc" "src/CMakeFiles/crnet.dir/routing/duato.cc.o" "gcc" "src/CMakeFiles/crnet.dir/routing/duato.cc.o.d"
  "/root/repo/src/routing/minimal_adaptive.cc" "src/CMakeFiles/crnet.dir/routing/minimal_adaptive.cc.o" "gcc" "src/CMakeFiles/crnet.dir/routing/minimal_adaptive.cc.o.d"
  "/root/repo/src/routing/planar_adaptive.cc" "src/CMakeFiles/crnet.dir/routing/planar_adaptive.cc.o" "gcc" "src/CMakeFiles/crnet.dir/routing/planar_adaptive.cc.o.d"
  "/root/repo/src/routing/routing.cc" "src/CMakeFiles/crnet.dir/routing/routing.cc.o" "gcc" "src/CMakeFiles/crnet.dir/routing/routing.cc.o.d"
  "/root/repo/src/routing/turn_model.cc" "src/CMakeFiles/crnet.dir/routing/turn_model.cc.o" "gcc" "src/CMakeFiles/crnet.dir/routing/turn_model.cc.o.d"
  "/root/repo/src/sim/config.cc" "src/CMakeFiles/crnet.dir/sim/config.cc.o" "gcc" "src/CMakeFiles/crnet.dir/sim/config.cc.o.d"
  "/root/repo/src/sim/stats.cc" "src/CMakeFiles/crnet.dir/sim/stats.cc.o" "gcc" "src/CMakeFiles/crnet.dir/sim/stats.cc.o.d"
  "/root/repo/src/sim/table.cc" "src/CMakeFiles/crnet.dir/sim/table.cc.o" "gcc" "src/CMakeFiles/crnet.dir/sim/table.cc.o.d"
  "/root/repo/src/topology/mesh.cc" "src/CMakeFiles/crnet.dir/topology/mesh.cc.o" "gcc" "src/CMakeFiles/crnet.dir/topology/mesh.cc.o.d"
  "/root/repo/src/topology/torus.cc" "src/CMakeFiles/crnet.dir/topology/torus.cc.o" "gcc" "src/CMakeFiles/crnet.dir/topology/torus.cc.o.d"
  "/root/repo/src/traffic/generator.cc" "src/CMakeFiles/crnet.dir/traffic/generator.cc.o" "gcc" "src/CMakeFiles/crnet.dir/traffic/generator.cc.o.d"
  "/root/repo/src/traffic/pattern.cc" "src/CMakeFiles/crnet.dir/traffic/pattern.cc.o" "gcc" "src/CMakeFiles/crnet.dir/traffic/pattern.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
