file(REMOVE_RECURSE
  "libcrnet.a"
)
