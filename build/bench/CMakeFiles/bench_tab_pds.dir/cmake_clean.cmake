file(REMOVE_RECURSE
  "CMakeFiles/bench_tab_pds.dir/bench_tab_pds.cc.o"
  "CMakeFiles/bench_tab_pds.dir/bench_tab_pds.cc.o.d"
  "bench_tab_pds"
  "bench_tab_pds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab_pds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
