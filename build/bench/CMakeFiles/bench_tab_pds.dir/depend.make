# Empty dependencies file for bench_tab_pds.
# This may be replaced when dependencies are built.
