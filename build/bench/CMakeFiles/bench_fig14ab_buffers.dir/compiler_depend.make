# Empty compiler generated dependencies file for bench_fig14ab_buffers.
# This may be replaced when dependencies are built.
