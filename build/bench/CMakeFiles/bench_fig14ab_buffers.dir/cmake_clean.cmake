file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14ab_buffers.dir/bench_fig14ab_buffers.cc.o"
  "CMakeFiles/bench_fig14ab_buffers.dir/bench_fig14ab_buffers.cc.o.d"
  "bench_fig14ab_buffers"
  "bench_fig14ab_buffers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14ab_buffers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
