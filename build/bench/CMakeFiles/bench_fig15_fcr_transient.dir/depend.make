# Empty dependencies file for bench_fig15_fcr_transient.
# This may be replaced when dependencies are built.
