file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_timeout.dir/bench_fig12_timeout.cc.o"
  "CMakeFiles/bench_fig12_timeout.dir/bench_fig12_timeout.cc.o.d"
  "bench_fig12_timeout"
  "bench_fig12_timeout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_timeout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
