# Empty dependencies file for bench_tab_saturation.
# This may be replaced when dependencies are built.
