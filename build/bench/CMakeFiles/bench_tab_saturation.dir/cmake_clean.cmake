file(REMOVE_RECURSE
  "CMakeFiles/bench_tab_saturation.dir/bench_tab_saturation.cc.o"
  "CMakeFiles/bench_tab_saturation.dir/bench_tab_saturation.cc.o.d"
  "bench_tab_saturation"
  "bench_tab_saturation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab_saturation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
