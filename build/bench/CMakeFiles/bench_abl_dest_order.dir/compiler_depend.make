# Empty compiler generated dependencies file for bench_abl_dest_order.
# This may be replaced when dependencies are built.
