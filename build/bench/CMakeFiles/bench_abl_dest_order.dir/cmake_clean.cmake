file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_dest_order.dir/bench_abl_dest_order.cc.o"
  "CMakeFiles/bench_abl_dest_order.dir/bench_abl_dest_order.cc.o.d"
  "bench_abl_dest_order"
  "bench_abl_dest_order.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_dest_order.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
