# Empty dependencies file for bench_fig11_retransmission.
# This may be replaced when dependencies are built.
