file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_retransmission.dir/bench_fig11_retransmission.cc.o"
  "CMakeFiles/bench_fig11_retransmission.dir/bench_fig11_retransmission.cc.o.d"
  "bench_fig11_retransmission"
  "bench_fig11_retransmission.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_retransmission.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
