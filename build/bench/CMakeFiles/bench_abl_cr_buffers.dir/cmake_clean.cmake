file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_cr_buffers.dir/bench_abl_cr_buffers.cc.o"
  "CMakeFiles/bench_abl_cr_buffers.dir/bench_abl_cr_buffers.cc.o.d"
  "bench_abl_cr_buffers"
  "bench_abl_cr_buffers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_cr_buffers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
