# Empty dependencies file for bench_tab_deep_network.
# This may be replaced when dependencies are built.
