file(REMOVE_RECURSE
  "CMakeFiles/bench_tab_ns_adjusted.dir/bench_tab_ns_adjusted.cc.o"
  "CMakeFiles/bench_tab_ns_adjusted.dir/bench_tab_ns_adjusted.cc.o.d"
  "bench_tab_ns_adjusted"
  "bench_tab_ns_adjusted.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab_ns_adjusted.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
