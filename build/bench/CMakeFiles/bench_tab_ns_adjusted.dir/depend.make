# Empty dependencies file for bench_tab_ns_adjusted.
# This may be replaced when dependencies are built.
