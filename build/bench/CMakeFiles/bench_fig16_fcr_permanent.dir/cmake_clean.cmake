file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_fcr_permanent.dir/bench_fig16_fcr_permanent.cc.o"
  "CMakeFiles/bench_fig16_fcr_permanent.dir/bench_fig16_fcr_permanent.cc.o.d"
  "bench_fig16_fcr_permanent"
  "bench_fig16_fcr_permanent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_fcr_permanent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
