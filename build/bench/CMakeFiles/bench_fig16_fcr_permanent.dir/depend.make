# Empty dependencies file for bench_fig16_fcr_permanent.
# This may be replaced when dependencies are built.
