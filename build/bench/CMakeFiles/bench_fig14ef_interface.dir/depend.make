# Empty dependencies file for bench_fig14ef_interface.
# This may be replaced when dependencies are built.
