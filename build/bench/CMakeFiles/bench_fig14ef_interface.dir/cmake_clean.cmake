file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14ef_interface.dir/bench_fig14ef_interface.cc.o"
  "CMakeFiles/bench_fig14ef_interface.dir/bench_fig14ef_interface.cc.o.d"
  "bench_fig14ef_interface"
  "bench_fig14ef_interface.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14ef_interface.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
