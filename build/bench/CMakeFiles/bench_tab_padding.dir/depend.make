# Empty dependencies file for bench_tab_padding.
# This may be replaced when dependencies are built.
