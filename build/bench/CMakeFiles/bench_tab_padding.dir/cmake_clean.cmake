file(REMOVE_RECURSE
  "CMakeFiles/bench_tab_padding.dir/bench_tab_padding.cc.o"
  "CMakeFiles/bench_tab_padding.dir/bench_tab_padding.cc.o.d"
  "bench_tab_padding"
  "bench_tab_padding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab_padding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
