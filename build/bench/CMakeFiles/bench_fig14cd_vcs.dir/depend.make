# Empty dependencies file for bench_fig14cd_vcs.
# This may be replaced when dependencies are built.
