# Empty dependencies file for bench_tab_latency_dist.
# This may be replaced when dependencies are built.
