file(REMOVE_RECURSE
  "CMakeFiles/bench_tab_latency_dist.dir/bench_tab_latency_dist.cc.o"
  "CMakeFiles/bench_tab_latency_dist.dir/bench_tab_latency_dist.cc.o.d"
  "bench_tab_latency_dist"
  "bench_tab_latency_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab_latency_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
