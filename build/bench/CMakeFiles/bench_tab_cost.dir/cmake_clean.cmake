file(REMOVE_RECURSE
  "CMakeFiles/bench_tab_cost.dir/bench_tab_cost.cc.o"
  "CMakeFiles/bench_tab_cost.dir/bench_tab_cost.cc.o.d"
  "bench_tab_cost"
  "bench_tab_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
