# Empty compiler generated dependencies file for bench_tab_cost.
# This may be replaced when dependencies are built.
