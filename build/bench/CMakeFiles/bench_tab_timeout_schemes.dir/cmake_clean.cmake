file(REMOVE_RECURSE
  "CMakeFiles/bench_tab_timeout_schemes.dir/bench_tab_timeout_schemes.cc.o"
  "CMakeFiles/bench_tab_timeout_schemes.dir/bench_tab_timeout_schemes.cc.o.d"
  "bench_tab_timeout_schemes"
  "bench_tab_timeout_schemes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab_timeout_schemes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
