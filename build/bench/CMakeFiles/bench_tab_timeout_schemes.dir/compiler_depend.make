# Empty compiler generated dependencies file for bench_tab_timeout_schemes.
# This may be replaced when dependencies are built.
