file(REMOVE_RECURSE
  "CMakeFiles/bench_tab_mesh_adaptive.dir/bench_tab_mesh_adaptive.cc.o"
  "CMakeFiles/bench_tab_mesh_adaptive.dir/bench_tab_mesh_adaptive.cc.o.d"
  "bench_tab_mesh_adaptive"
  "bench_tab_mesh_adaptive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab_mesh_adaptive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
