# Empty compiler generated dependencies file for bench_tab_mesh_adaptive.
# This may be replaced when dependencies are built.
