# Empty dependencies file for test_deep_channels.
# This may be replaced when dependencies are built.
