file(REMOVE_RECURSE
  "CMakeFiles/test_deep_channels.dir/test_deep_channels.cc.o"
  "CMakeFiles/test_deep_channels.dir/test_deep_channels.cc.o.d"
  "test_deep_channels"
  "test_deep_channels.pdb"
  "test_deep_channels[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_deep_channels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
