file(REMOVE_RECURSE
  "CMakeFiles/test_network_cr.dir/test_network_cr.cc.o"
  "CMakeFiles/test_network_cr.dir/test_network_cr.cc.o.d"
  "test_network_cr"
  "test_network_cr.pdb"
  "test_network_cr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_network_cr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
