# Empty compiler generated dependencies file for test_network_cr.
# This may be replaced when dependencies are built.
