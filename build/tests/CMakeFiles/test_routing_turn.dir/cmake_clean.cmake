file(REMOVE_RECURSE
  "CMakeFiles/test_routing_turn.dir/test_routing_turn.cc.o"
  "CMakeFiles/test_routing_turn.dir/test_routing_turn.cc.o.d"
  "test_routing_turn"
  "test_routing_turn.pdb"
  "test_routing_turn[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_routing_turn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
