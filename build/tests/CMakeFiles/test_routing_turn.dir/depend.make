# Empty dependencies file for test_routing_turn.
# This may be replaced when dependencies are built.
