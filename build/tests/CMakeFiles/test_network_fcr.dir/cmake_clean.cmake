file(REMOVE_RECURSE
  "CMakeFiles/test_network_fcr.dir/test_network_fcr.cc.o"
  "CMakeFiles/test_network_fcr.dir/test_network_fcr.cc.o.d"
  "test_network_fcr"
  "test_network_fcr.pdb"
  "test_network_fcr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_network_fcr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
