# Empty compiler generated dependencies file for test_network_fcr.
# This may be replaced when dependencies are built.
