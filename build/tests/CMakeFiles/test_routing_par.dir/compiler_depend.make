# Empty compiler generated dependencies file for test_routing_par.
# This may be replaced when dependencies are built.
