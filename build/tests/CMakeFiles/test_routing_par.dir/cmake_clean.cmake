file(REMOVE_RECURSE
  "CMakeFiles/test_routing_par.dir/test_routing_par.cc.o"
  "CMakeFiles/test_routing_par.dir/test_routing_par.cc.o.d"
  "test_routing_par"
  "test_routing_par.pdb"
  "test_routing_par[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_routing_par.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
