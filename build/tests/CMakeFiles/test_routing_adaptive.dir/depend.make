# Empty dependencies file for test_routing_adaptive.
# This may be replaced when dependencies are built.
