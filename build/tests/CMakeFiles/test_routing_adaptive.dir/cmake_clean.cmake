file(REMOVE_RECURSE
  "CMakeFiles/test_routing_adaptive.dir/test_routing_adaptive.cc.o"
  "CMakeFiles/test_routing_adaptive.dir/test_routing_adaptive.cc.o.d"
  "test_routing_adaptive"
  "test_routing_adaptive.pdb"
  "test_routing_adaptive[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_routing_adaptive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
