file(REMOVE_RECURSE
  "CMakeFiles/test_fuzz_stress.dir/test_fuzz_stress.cc.o"
  "CMakeFiles/test_fuzz_stress.dir/test_fuzz_stress.cc.o.d"
  "test_fuzz_stress"
  "test_fuzz_stress.pdb"
  "test_fuzz_stress[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fuzz_stress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
