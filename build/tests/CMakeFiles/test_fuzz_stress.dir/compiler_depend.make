# Empty compiler generated dependencies file for test_fuzz_stress.
# This may be replaced when dependencies are built.
