file(REMOVE_RECURSE
  "CMakeFiles/test_coordinates.dir/test_coordinates.cc.o"
  "CMakeFiles/test_coordinates.dir/test_coordinates.cc.o.d"
  "test_coordinates"
  "test_coordinates.pdb"
  "test_coordinates[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_coordinates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
