file(REMOVE_RECURSE
  "CMakeFiles/test_network_order.dir/test_network_order.cc.o"
  "CMakeFiles/test_network_order.dir/test_network_order.cc.o.d"
  "test_network_order"
  "test_network_order.pdb"
  "test_network_order[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_network_order.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
