# Empty dependencies file for test_network_order.
# This may be replaced when dependencies are built.
