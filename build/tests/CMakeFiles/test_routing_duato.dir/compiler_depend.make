# Empty compiler generated dependencies file for test_routing_duato.
# This may be replaced when dependencies are built.
