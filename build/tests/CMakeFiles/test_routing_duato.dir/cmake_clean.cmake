file(REMOVE_RECURSE
  "CMakeFiles/test_routing_duato.dir/test_routing_duato.cc.o"
  "CMakeFiles/test_routing_duato.dir/test_routing_duato.cc.o.d"
  "test_routing_duato"
  "test_routing_duato.pdb"
  "test_routing_duato[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_routing_duato.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
