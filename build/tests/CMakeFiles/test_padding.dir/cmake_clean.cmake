file(REMOVE_RECURSE
  "CMakeFiles/test_padding.dir/test_padding.cc.o"
  "CMakeFiles/test_padding.dir/test_padding.cc.o.d"
  "test_padding"
  "test_padding.pdb"
  "test_padding[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_padding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
