file(REMOVE_RECURSE
  "CMakeFiles/test_network_deadlock.dir/test_network_deadlock.cc.o"
  "CMakeFiles/test_network_deadlock.dir/test_network_deadlock.cc.o.d"
  "test_network_deadlock"
  "test_network_deadlock.pdb"
  "test_network_deadlock[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_network_deadlock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
