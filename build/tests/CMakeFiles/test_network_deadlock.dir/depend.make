# Empty dependencies file for test_network_deadlock.
# This may be replaced when dependencies are built.
