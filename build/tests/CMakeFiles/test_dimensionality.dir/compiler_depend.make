# Empty compiler generated dependencies file for test_dimensionality.
# This may be replaced when dependencies are built.
