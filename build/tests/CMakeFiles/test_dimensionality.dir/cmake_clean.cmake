file(REMOVE_RECURSE
  "CMakeFiles/test_dimensionality.dir/test_dimensionality.cc.o"
  "CMakeFiles/test_dimensionality.dir/test_dimensionality.cc.o.d"
  "test_dimensionality"
  "test_dimensionality.pdb"
  "test_dimensionality[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dimensionality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
