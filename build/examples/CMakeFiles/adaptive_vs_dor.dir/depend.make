# Empty dependencies file for adaptive_vs_dor.
# This may be replaced when dependencies are built.
