file(REMOVE_RECURSE
  "CMakeFiles/adaptive_vs_dor.dir/adaptive_vs_dor.cpp.o"
  "CMakeFiles/adaptive_vs_dor.dir/adaptive_vs_dor.cpp.o.d"
  "adaptive_vs_dor"
  "adaptive_vs_dor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_vs_dor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
