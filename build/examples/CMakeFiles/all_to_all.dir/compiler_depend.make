# Empty compiler generated dependencies file for all_to_all.
# This may be replaced when dependencies are built.
